package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"

	"pride/internal/addrmap"
	"pride/internal/rng"
)

func testMapping() addrmap.Mapping {
	return addrmap.Mapping{ColumnBits: 6, BankBits: 3, RowBits: 12, RankBits: 1, ChannelBits: 2, XORBankHash: true}
}

func randomAddrs(m addrmap.Mapping, n int, seed uint64) []uint64 {
	c := m.MustCompile()
	r := rng.New(seed)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = c.Encode(addrmap.Coord{
			Channel: r.Intn(c.Channels()),
			Rank:    r.Intn(c.Ranks()),
			Bank:    r.Intn(c.Banks()),
			Row:     r.Intn(c.Rows()),
		})
	}
	return addrs
}

func TestBinaryRoundTrip(t *testing.T) {
	m := testMapping()
	for _, n := range []int{0, 1, 7, 4096, 4097, 10000} {
		addrs := randomAddrs(m, n, uint64(n)+1)
		var buf bytes.Buffer
		if err := WriteAll(&buf, m, addrs); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		if got, want := buf.Len(), HeaderSize+n*RecordSize; got != want {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, got, want)
		}
		gotM, got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if gotM != m {
			t.Fatalf("n=%d: mapping %+v, want %+v", n, gotM, m)
		}
		if len(got) != len(addrs) {
			t.Fatalf("n=%d: %d records, want %d", n, len(got), len(addrs))
		}
		for i := range got {
			if got[i] != addrs[i] {
				t.Fatalf("n=%d: record %d = %#x, want %#x", n, i, got[i], addrs[i])
			}
		}
	}
}

func TestReaderSmallBatches(t *testing.T) {
	m := testMapping()
	addrs := randomAddrs(m, 1000, 3)
	var buf bytes.Buffer
	if err := WriteAll(&buf, m, addrs); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 1000 {
		t.Fatalf("Count() = %d", tr.Count())
	}
	var got []uint64
	batch := make([]uint64, 7)
	for {
		n, err := tr.ReadBatch(batch)
		got = append(got, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(addrs) {
		t.Fatalf("%d records, want %d", len(got), len(addrs))
	}
	for i := range got {
		if got[i] != addrs[i] {
			t.Fatalf("record %d = %#x, want %#x", i, got[i], addrs[i])
		}
	}
	// Repeated reads after EOF keep returning EOF.
	if n, err := tr.ReadBatch(batch); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF ReadBatch = (%d, %v)", n, err)
	}
}

func TestReaderCRCDeterministic(t *testing.T) {
	m := testMapping()
	addrs := randomAddrs(m, 500, 9)
	var buf bytes.Buffer
	if err := WriteAll(&buf, m, addrs); err != nil {
		t.Fatal(err)
	}
	crc := func() uint32 {
		tr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Drain(tr, nil); err != nil {
			t.Fatal(err)
		}
		return tr.CRC32()
	}
	a, b := crc(), crc()
	if a != b || a == 0 {
		t.Fatalf("CRC not deterministic or zero: %#x vs %#x", a, b)
	}
	// A one-byte flip in the records changes the fingerprint.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[HeaderSize] ^= 0x01 // still in range: flips a column bit of record 0
	tr, err := NewReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(tr, nil); err != nil {
		t.Fatal(err)
	}
	if tr.CRC32() == a {
		t.Fatal("CRC unchanged after corrupting a record byte")
	}
}

func TestReaderRejects(t *testing.T) {
	m := testMapping()
	addrs := randomAddrs(m, 16, 5)
	var buf bytes.Buffer
	if err := WriteAll(&buf, m, addrs); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := func(mutate func(b []byte) []byte) error {
		b := mutate(append([]byte(nil), valid...))
		tr, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		_, err = Drain(tr, nil)
		return err
	}
	cases := map[string]func(b []byte) []byte{
		"bad magic":     func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":   func(b []byte) []byte { b[8] = 99; return b },
		"bad flags":     func(b []byte) []byte { b[17] = 0x80; return b },
		"reserved":      func(b []byte) []byte { b[20] = 1; return b },
		"bad mapping":   func(b []byte) []byte { b[14] = 0; return b }, // row bits = 0
		"torn header":   func(b []byte) []byte { return b[:HeaderSize-1] },
		"torn tail":     func(b []byte) []byte { return b[:len(b)-3] },
		"missing rec":   func(b []byte) []byte { return b[:len(b)-RecordSize] },
		"trailing data": func(b []byte) []byte { return append(b, 0xAA) },
		"out of range": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[HeaderSize:], 1<<63)
			return b
		},
	}
	for name, mutate := range cases {
		if err := corrupt(mutate); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadBatchZeroAlloc(t *testing.T) {
	m := testMapping()
	addrs := randomAddrs(m, 20000, 11)
	var buf bytes.Buffer
	if err := WriteAll(&buf, m, addrs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	batch := make([]uint64, 512)
	var rd bytes.Reader
	rd.Reset(raw)
	tr, err := NewReader(&rd)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		rd.Reset(raw)
		if err := tr.Reset(&rd); err != nil {
			t.Fatal(err)
		}
		for {
			_, err := tr.ReadBatch(batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	// The 64K buffer is allocated once by NewReader; Reset reuses it, so a
	// full header-validate-and-decode cycle must be allocation-free.
	if allocs != 0 {
		t.Fatalf("full decode through a reused Reader allocated %v times; steady path is not allocation-free", allocs)
	}
}

func TestReaderReset(t *testing.T) {
	first := testMapping()
	second := addrmap.Mapping{ColumnBits: 4, BankBits: 2, RowBits: 10, RankBits: 1, ChannelBits: 1}
	firstAddrs := randomAddrs(first, 100, 3)
	secondAddrs := randomAddrs(second, 7, 4)
	var firstBuf, secondBuf bytes.Buffer
	if err := WriteAll(&firstBuf, first, firstAddrs); err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(&secondBuf, second, secondAddrs); err != nil {
		t.Fatal(err)
	}

	tr, err := NewReader(bytes.NewReader(firstBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(tr, nil); err != nil {
		t.Fatal(err)
	}

	// A failed Reset leaves the Reader unusable but recoverable: a later
	// successful Reset must behave exactly like a fresh NewReader.
	if err := tr.Reset(bytes.NewReader([]byte("NOTATRACE, not even close"))); err == nil {
		t.Fatal("Reset accepted a corrupt header")
	}
	if err := tr.Reset(bytes.NewReader(secondBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := tr.Mapping(); got != second {
		t.Fatalf("mapping after Reset = %+v, want %+v", got, second)
	}
	if got, want := tr.Count(), uint64(len(secondAddrs)); got != want {
		t.Fatalf("count after Reset = %d, want %d", got, want)
	}
	got, err := Drain(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewReader(bytes.NewReader(secondBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Reset decode yielded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d after Reset = %#x, want %#x", i, got[i], want[i])
		}
	}
	if tr.CRC32() != fresh.CRC32() {
		t.Fatalf("CRC after Reset = %#x, fresh Reader = %#x", tr.CRC32(), fresh.CRC32())
	}
}

func TestTextRoundTrip(t *testing.T) {
	m := testMapping()
	addrs := randomAddrs(m, 100, 21)
	var buf bytes.Buffer
	if err := WriteText(&buf, m, addrs); err != nil {
		t.Fatal(err)
	}
	gotM, got, err := ReadText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotM != m {
		t.Fatalf("mapping %+v, want %+v", gotM, m)
	}
	if len(got) != len(addrs) {
		t.Fatalf("%d records, want %d", len(got), len(addrs))
	}
	for i := range got {
		if got[i] != addrs[i] {
			t.Fatalf("record %d = %d, want %d", i, got[i], addrs[i])
		}
	}
}

func TestTextRejects(t *testing.T) {
	bad := map[string]string{
		"missing mapping":    "act: 1 2 3\n",
		"act before mapping": "act: 1\nmapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\n",
		"duplicate mapping": "mapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\n" +
			"mapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\n",
		"unknown key": "mapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\nrows: 1 2\n",
		"bad address": "mapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\nact: -5\n",
		"out of range address": "mapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\n" +
			"act: 99999999999\n",
		"no colon":    "mapping col=6 bank=3 row=12 rank=1 chan=2 xor=1\n",
		"bad mapping": "mapping: col=6 bank=3 row=0 rank=1 chan=2 xor=1\n",
	}
	for name, s := range bad {
		if _, _, err := ReadText(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("%s: accepted %q", name, s)
		}
	}
	// Comments and blank lines are fine; an empty trace (mapping only) is fine.
	ok := "# a trace\n\nmapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\n"
	if _, addrs, err := ReadText(bytes.NewReader([]byte(ok))); err != nil || len(addrs) != 0 {
		t.Fatalf("empty trace: addrs=%v err=%v", addrs, err)
	}
}

func TestTextToBinaryConversion(t *testing.T) {
	// The two forms agree: text-decoded records re-encoded as binary decode
	// back to the same stream.
	m := testMapping()
	addrs := randomAddrs(m, 64, 31)
	var text bytes.Buffer
	if err := WriteText(&text, m, addrs); err != nil {
		t.Fatal(err)
	}
	tm, taddrs, err := ReadText(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteAll(&bin, tm, taddrs); err != nil {
		t.Fatal(err)
	}
	bm, baddrs, err := ReadAll(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if bm != m || len(baddrs) != len(addrs) {
		t.Fatalf("conversion changed the trace: %+v %d", bm, len(baddrs))
	}
	for i := range baddrs {
		if baddrs[i] != addrs[i] {
			t.Fatalf("record %d = %#x, want %#x", i, baddrs[i], addrs[i])
		}
	}
}

func TestWriterCountEnforced(t *testing.T) {
	m := testMapping()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteBatch([]uint64{0, 1, 2}); err == nil {
		t.Fatal("over-count WriteBatch accepted")
	}
	if err := tw.WriteBatch([]uint64{0}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err == nil {
		t.Fatal("short Close accepted")
	}
	// Out-of-range address rejected at write time.
	tw2, err := NewWriter(&buf, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw2.WriteBatch([]uint64{1 << 63}); err == nil {
		t.Fatal("out-of-range address accepted")
	}
}

func TestSliceSource(t *testing.T) {
	m := testMapping()
	addrs := randomAddrs(m, 10, 41)
	src := NewSliceSource(m, addrs)
	if src.Mapping() != m {
		t.Fatal("mapping mismatch")
	}
	got, err := Drain(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("%d records", len(got))
	}
	if _, err := Drain(src, nil); err != nil {
		t.Fatal(err)
	}
	src.Reset()
	again, err := Drain(src, nil)
	if err != nil || len(again) != 10 {
		t.Fatalf("after Reset: %d records, %v", len(again), err)
	}
}

func BenchmarkReadBatch(b *testing.B) {
	m := testMapping()
	addrs := randomAddrs(m, 1<<17, 7)
	var buf bytes.Buffer
	if err := WriteAll(&buf, m, addrs); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	batch := make([]uint64, 4096)
	var rd bytes.Reader
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(raw)
		tr, err := NewReader(&rd)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := tr.ReadBatch(batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestReaderErrorsCarryByteOffset(t *testing.T) {
	m := addrmap.Mapping{ColumnBits: 3, BankBits: 2, RowBits: 4}
	var buf bytes.Buffer
	addrs := []uint64{1, 2, 3, 4, 5}
	if err := WriteAll(&buf, m, addrs); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Corrupt record 3 so it has bits above the 9-bit mapping; its byte
	// offset is header + 3 records.
	bad := append([]byte(nil), good...)
	wantOff := HeaderSize + 3*RecordSize
	binary.LittleEndian.PutUint64(bad[wantOff:], 1<<40)
	tr, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Drain(tr, nil)
	if err == nil {
		t.Fatal("corrupt record decoded cleanly")
	}
	for _, want := range []string{"record 3", fmt.Sprintf("byte offset %d", wantOff)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// A torn tail reports where the stream ended.
	tr, err = NewReader(bytes.NewReader(good[:wantOff]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Drain(tr, nil)
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("byte offset %d", wantOff)) {
		t.Errorf("torn-tail error %q does not carry byte offset %d", err, wantOff)
	}

	// Trailing data reports the offset where the trace should have ended.
	trailing := append(append([]byte(nil), good...), 0xFF)
	tr, err = NewReader(bytes.NewReader(trailing))
	if err != nil {
		t.Fatal(err)
	}
	endOff := HeaderSize + len(addrs)*RecordSize
	_, err = Drain(tr, nil)
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("byte offset %d", endOff)) {
		t.Errorf("trailing-data error %q does not carry byte offset %d", err, endOff)
	}
}
