// Package trace defines the ACT-record trace formats and the streaming
// decoder behind the server-scale replay pipeline.
//
// A trace is an ordered stream of physical addresses, one per row
// activation, together with the addrmap.Mapping that gives the addresses
// meaning. Two encodings share that model:
//
//   - A compact binary form (one fixed-width 8-byte record per ACT, a
//     32-byte self-describing header) built for multi-GB replay: the Reader
//     streams records in caller-supplied batches with zero allocations per
//     record on the steady path.
//   - A line-oriented text form (see text.go) that is diff-friendly and
//     hand-editable, mirroring patterns.ReadTrace's strictness: unknown keys
//     are rejected and errors carry line numbers.
//
// Anything that yields ACT records — a decoded trace file, an in-memory
// slice, a workload generator — implements Source, so the replay engine is
// indifferent to where the records come from.
package trace

import "pride/internal/addrmap"

// Source is an ordered stream of ACT records (physical addresses) under a
// fixed address mapping. ReadBatch fills dst with up to len(dst) records and
// returns how many it wrote; it returns io.EOF (with n == 0) once the stream
// is exhausted. Implementations must be cheap to call in a tight loop — the
// replay demux calls ReadBatch with a reused batch buffer.
type Source interface {
	Mapping() addrmap.Mapping
	ReadBatch(dst []uint64) (int, error)
}

// SliceSource adapts an in-memory record slice to Source. The zero value is
// not usable; build one with NewSliceSource.
type SliceSource struct {
	m     addrmap.Mapping
	addrs []uint64
	pos   int
}

// NewSliceSource returns a Source reading the given records in order. The
// slice is not copied; the caller must not mutate it while reading.
func NewSliceSource(m addrmap.Mapping, addrs []uint64) *SliceSource {
	return &SliceSource{m: m, addrs: addrs}
}

// Mapping returns the address mapping the records are encoded under.
func (s *SliceSource) Mapping() addrmap.Mapping { return s.m }

// ReadBatch implements Source.
func (s *SliceSource) ReadBatch(dst []uint64) (int, error) {
	n := copy(dst, s.addrs[s.pos:])
	s.pos += n
	if n == 0 {
		return 0, errEOF
	}
	return n, nil
}

// Reset rewinds the source to the first record, so the same SliceSource can
// drive repeated replays.
func (s *SliceSource) Reset() { s.pos = 0 }
