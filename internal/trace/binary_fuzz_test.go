package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"pride/internal/addrmap"
)

// FuzzReadRecords throws arbitrary byte soup at the binary decoder (the
// sibling of patterns' FuzzReadTrace). The decoder must never panic; when it
// accepts an input, the decoded trace re-encoded through the Writer must be
// byte-identical — the binary form is canonical, so accept-then-reencode is
// the round-trip invariant corruption cannot satisfy.
func FuzzReadRecords(f *testing.F) {
	m := addrmap.Mapping{ColumnBits: 6, BankBits: 3, RowBits: 12, RankBits: 1, ChannelBits: 2, XORBankHash: true}
	valid := func(addrs []uint64) []byte {
		var buf bytes.Buffer
		if err := WriteAll(&buf, m, addrs); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	empty := valid(nil)
	small := valid([]uint64{0, 1, 0x3FFFFF, 163840, 4096})

	seeds := [][]byte{
		nil,
		empty,
		small,
		[]byte("PRIDEACT"),   // header cut after the magic
		small[:HeaderSize],   // header only, count declared but no records
		small[:HeaderSize-1], // torn header
		small[:len(small)-3], // torn tail mid-record
		append(small[:len(small):len(small)], 0xAA),                          // trailing data
		[]byte("mapping: col=6 bank=3 row=12 rank=1 chan=2 xor=1\nact: 1\n"), // text form fed to the binary decoder
	}
	// Corrupt header fields one at a time: magic, version, mapping widths,
	// flags, reserved bytes, count.
	for _, off := range []int{0, 8, 12, 14, 17, 20, 24, 31} {
		b := append([]byte(nil), small...)
		b[off] ^= 0xFF
		seeds = append(seeds, b)
	}
	// An in-range header with an out-of-range record.
	b := append([]byte(nil), small...)
	binary.LittleEndian.PutUint64(b[HeaderSize:], 1<<62)
	seeds = append(seeds, b)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		addrs, err := Drain(tr, nil)
		if err != nil {
			return // rejected mid-stream: fine
		}
		if uint64(len(addrs)) != tr.Count() {
			t.Fatalf("accepted %d records but header declares %d", len(addrs), tr.Count())
		}
		var re bytes.Buffer
		if err := WriteAll(&re, tr.Mapping(), addrs); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatalf("re-encode differs from accepted input: %d vs %d bytes", re.Len(), len(data))
		}
		// Reading past EOF stays EOF.
		var one [1]uint64
		if n, err := tr.ReadBatch(one[:]); n != 0 || err != io.EOF {
			t.Fatalf("post-drain ReadBatch = (%d, %v)", n, err)
		}
	})
}
