// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the PrIDE simulation stack.
//
// The paper's threat model (Section II-A) assumes the attacker cannot read
// the seed of the in-DRAM random number generator, so for *security analysis*
// the sampler is modelled as an ideal Bernoulli source. For *simulation* we
// need reproducibility: every experiment takes an explicit 64-bit seed and
// derives independent streams with SplitMix64, so that two runs with the same
// seed produce bit-identical results regardless of evaluation order.
package rng

import "math"

// Source is the minimal interface the simulators need: a stream of uniform
// 64-bit values plus derived helpers. It deliberately mirrors a subset of
// math/rand so callers can swap implementations, but every implementation in
// this package is allocation-free and inlineable.
type Source interface {
	// Uint64 returns the next 64 uniformly distributed bits.
	Uint64() uint64
}

// SplitMix64 is a tiny, statistically strong generator that is primarily used
// for seeding other generators (its output function is a bijection, so
// distinct seeds give distinct streams). See Steele et al., OOPSLA 2014.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 advances the state and returns the next value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// XorShift64Star is the workhorse generator for the Monte-Carlo engines:
// one xor-shift round plus a multiplication, passing BigCrush on the high
// 32 bits. Period 2^64-1; the all-zero state is forbidden and remapped.
type XorShift64Star struct {
	state uint64
}

// NewXorShift64Star returns a generator seeded via SplitMix64 so that
// low-entropy seeds (0, 1, 2, ...) still yield well-mixed states.
func NewXorShift64Star(seed uint64) *XorShift64Star {
	sm := NewSplitMix64(seed)
	st := sm.Uint64()
	if st == 0 {
		st = 0x9E3779B97F4A7C15 // any nonzero constant
	}
	return &XorShift64Star{state: st}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (x *XorShift64Star) Uint64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// PCG32 is a permuted-congruential generator producing 32-bit outputs from
// 64-bit state. It models the small hardware PRNG a DRAM vendor would embed
// next to each bank (the paper budgets a 7-bit TRNG; we only need its
// *behavioural* role, a uniform sampler).
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 returns a PCG32 with the given seed and stream selector.
func NewPCG32(seed, stream uint64) *PCG32 {
	p := &PCG32{inc: stream<<1 | 1}
	p.state = 0
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// Uint32 returns the next 32-bit value.
func (p *PCG32) Uint32() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64-bit value (two 32-bit draws).
func (p *PCG32) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Stream wraps a Source with convenience samplers. The zero value is not
// usable; construct with NewStream.
type Stream struct {
	src Source
}

// NewStream returns a Stream drawing from src.
func NewStream(src Source) *Stream {
	return &Stream{src: src}
}

// New returns a Stream backed by a fresh XorShift64Star with the given seed.
func New(seed uint64) *Stream {
	return NewStream(NewXorShift64Star(seed))
}

// Uint64 returns the next raw 64-bit value.
func (s *Stream) Uint64() uint64 { return s.src.Uint64() }

// Float64 returns a uniform float64 in [0,1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.src.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Probabilities outside [0,1]
// saturate (p<=0 never fires, p>=1 always fires), matching how a hardware
// comparator against a fixed threshold behaves.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0, mirroring
// math/rand, because a zero-sized choice is always a caller bug.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := s.src.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Perm returns a pseudo-random permutation of [0,n) using Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success (support
// {0,1,2,...}). Used to fast-forward sparse insertion events in large
// Monte-Carlo runs. Panics if p is outside (0,1].
func (s *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	// Inverse CDF; u in [0,1) keeps the log argument in (0,1].
	return int(math.Log1p(-u) / math.Log1p(-p))
}

// Fork derives an independent Stream from this one. The derived stream's
// seed is drawn from the parent, so a single experiment seed fans out into
// arbitrarily many decorrelated streams deterministically.
//
// Fork is inherently sequential: the i-th forked stream depends on the
// parent's state after i-1 forks. Parallel trial runners that hand trial i
// to an arbitrary worker need random access instead — use DeriveSeed or
// Derived for that.
func (s *Stream) Fork() *Stream {
	return New(s.src.Uint64())
}

// splitMixGamma is SplitMix64's Weyl-sequence increment (the golden-ratio
// constant of Steele et al., OOPSLA 2014).
const splitMixGamma = 0x9E3779B97F4A7C15

// DeriveSeed returns the seed of sub-stream i of the experiment seed base.
// It is the (i+1)-th output of SplitMix64(base), computed in O(1) by jumping
// the Weyl sequence directly to index i, so trial i receives the same seed
// no matter which worker computes it or in which order trials run.
//
// SplitMix64's output function is a bijection over distinct Weyl states, so
// for a fixed base every index yields a distinct seed, and the XorShift64Star
// streams seeded from them are decorrelated (each seed lands the generator at
// an unrelated point of its single 2^64-1 cycle; prefixes of practical length
// from adjacent indices do not overlap).
func DeriveSeed(base, i uint64) uint64 {
	z := base + (i+1)*splitMixGamma
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Derived returns a fresh Stream for sub-stream i of the experiment seed
// base: Derived(base, i) == New(DeriveSeed(base, i)). It is the random-access
// counterpart of Fork for sharded, order-independent trial execution.
func Derived(base, i uint64) *Stream {
	return New(DeriveSeed(base, i))
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}
