// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the PrIDE simulation stack.
//
// The paper's threat model (Section II-A) assumes the attacker cannot read
// the seed of the in-DRAM random number generator, so for *security analysis*
// the sampler is modelled as an ideal Bernoulli source. For *simulation* we
// need reproducibility: every experiment takes an explicit 64-bit seed and
// derives independent streams with SplitMix64, so that two runs with the same
// seed produce bit-identical results regardless of evaluation order.
package rng

import "math"

// Source is the minimal interface the simulators need: a stream of uniform
// 64-bit values plus derived helpers. It deliberately mirrors a subset of
// math/rand so callers can swap implementations, but every implementation in
// this package is allocation-free and inlineable.
type Source interface {
	// Uint64 returns the next 64 uniformly distributed bits.
	Uint64() uint64
}

// SplitMix64 is a tiny, statistically strong generator that is primarily used
// for seeding other generators (its output function is a bijection, so
// distinct seeds give distinct streams). See Steele et al., OOPSLA 2014.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 advances the state and returns the next value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// XorShift64Star is the workhorse generator for the Monte-Carlo engines:
// one xor-shift round plus a multiplication, passing BigCrush on the high
// 32 bits. Period 2^64-1; the all-zero state is forbidden and remapped.
type XorShift64Star struct {
	state uint64
}

// NewXorShift64Star returns a generator seeded via SplitMix64 so that
// low-entropy seeds (0, 1, 2, ...) still yield well-mixed states.
func NewXorShift64Star(seed uint64) *XorShift64Star {
	sm := NewSplitMix64(seed)
	st := sm.Uint64()
	if st == 0 {
		st = 0x9E3779B97F4A7C15 // any nonzero constant
	}
	return &XorShift64Star{state: st}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (x *XorShift64Star) Uint64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// PCG32 is a permuted-congruential generator producing 32-bit outputs from
// 64-bit state. It models the small hardware PRNG a DRAM vendor would embed
// next to each bank (the paper budgets a 7-bit TRNG; we only need its
// *behavioural* role, a uniform sampler).
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 returns a PCG32 with the given seed and stream selector.
func NewPCG32(seed, stream uint64) *PCG32 {
	p := &PCG32{inc: stream<<1 | 1}
	p.state = 0
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// Uint32 returns the next 32-bit value.
func (p *PCG32) Uint32() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64-bit value (two 32-bit draws).
func (p *PCG32) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Stream wraps a Source with convenience samplers. The zero value is not
// usable; construct with NewStream.
type Stream struct {
	src Source
	// xs caches the concrete generator when src is a *XorShift64Star so the
	// hot samplers can draw through a direct (inlineable) call instead of
	// interface dispatch. Purely an optimization: the draw sequence is
	// identical either way.
	xs *XorShift64Star
}

// NewStream returns a Stream drawing from src.
func NewStream(src Source) *Stream {
	s := &Stream{src: src}
	if x, ok := src.(*XorShift64Star); ok {
		s.xs = x
	}
	return s
}

// New returns a Stream backed by a fresh XorShift64Star with the given seed.
func New(seed uint64) *Stream {
	return NewStream(NewXorShift64Star(seed))
}

// next returns the next raw 64-bit draw, devirtualized when the backing
// source is the workhorse XorShift64Star.
func (s *Stream) next() uint64 {
	if x := s.xs; x != nil {
		return x.Uint64()
	}
	return s.src.Uint64()
}

// Uint64 returns the next raw 64-bit value.
func (s *Stream) Uint64() uint64 { return s.next() }

// Float64 returns a uniform float64 in [0,1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// bernoulliBits is the precision of Bernoulli sampling: draws and thresholds
// live on the integer lattice {0, ..., 2^53}, matching Float64's 53-bit
// mantissa so the integer compare is bit-identical to `Float64() < p`.
const bernoulliBits = 53

// Threshold is a precomputed integer acceptance threshold for Bernoulli
// sampling: a draw u (53 high bits of a raw Uint64) fires iff u < t.
// Precompute it once per configuration with NewThreshold and sample with
// Stream.BernoulliT; the per-event cost is then one raw draw, a shift, and
// an integer compare — no float conversion or division.
type Threshold uint64

// NewThreshold returns the acceptance threshold equivalent to probability p.
// Out-of-range probabilities saturate: p <= 0 (or NaN) never fires, p >= 1
// always fires.
//
// For p in (0,1) the threshold is ceil(p * 2^53), which makes
// BernoulliT(NewThreshold(p)) return exactly the same decisions as the
// historical float compare `Float64() < p` on every draw: p*2^53 is computed
// exactly (scaling by a power of two only shifts the exponent), and for an
// exact real x and integer u, u < x iff u < ceil(x).
func NewThreshold(p float64) Threshold {
	if !(p > 0) { // also catches NaN
		return 0
	}
	if p >= 1 {
		return 1 << bernoulliBits
	}
	return Threshold(math.Ceil(p * (1 << bernoulliBits)))
}

// Prob returns the exact probability with which the threshold fires.
func (t Threshold) Prob() float64 { return float64(t) / (1 << bernoulliBits) }

// BernoulliT returns true with the probability encoded by t, consuming
// exactly one raw draw. This is the allocation-free hot path used by the
// per-activation loops; precompute t with NewThreshold.
func (s *Stream) BernoulliT(t Threshold) bool {
	return s.next()>>11 < uint64(t)
}

// Bernoulli returns true with probability p. Probabilities outside [0,1]
// saturate (p <= 0 never fires, p >= 1 always fires), matching how a
// hardware comparator against a fixed threshold behaves.
//
// Draw-count contract: Bernoulli consumes exactly one raw draw from the
// underlying source for every call, including saturated probabilities. This
// keeps streams aligned across configuration sweeps — two runs that differ
// only in p see the same downstream draw sequence. (Historically p <= 0 and
// p >= 1 returned without drawing, silently desynchronizing such sweeps.)
func (s *Stream) Bernoulli(p float64) bool {
	return s.BernoulliT(NewThreshold(p))
}

// SkipNever is the Skip sampler's "no event ever" sentinel, returned when
// the threshold can never fire (p <= 0). It is larger than any practical
// simulation budget, so callers that clamp the returned skip against their
// remaining ACT budget need no special casing.
const SkipNever = math.MaxInt

// Skip is a precomputed geometric skip-ahead sampler for the event-driven
// engines: where the exact engines draw one Bernoulli(t) per activation and
// act on the rare success, SkipT draws ONCE and returns how many consecutive
// failures precede the next success. Sampling the gap directly turns
// O(ACTs) non-event iterations into O(events) work while simulating the
// same process: a sequence of i.i.d. Bernoulli(t) trials has geometric
// inter-arrival gaps, so replacing the per-trial draws with SkipT leaves
// every observable distribution unchanged (the raw draw SEQUENCE differs —
// one draw per event instead of one per trial — which is why the event
// engines are validated statistically rather than bit-for-bit).
//
// Precompute once per configuration with NewSkip; the per-event cost is one
// raw draw, one polynomial log, and one multiply.
type Skip struct {
	t Threshold
	// invLnQ is 1/ln(1-p), the inverse-CDF scale factor (negative for
	// p in (0,1); unused for the saturated thresholds).
	invLnQ float64
	// boundary is the exclusion band around integer values of the scaled
	// log within which the cheap polynomial log cannot be trusted to floor
	// correctly (fastLogErr amplified by the scale factor); draws landing
	// inside it recompute with math.Log. A boundary >= 0.5 degenerates to
	// the math.Log path on every draw.
	boundary float64
}

// NewSkip returns the skip sampler equivalent to repeated BernoulliT(t)
// draws. Saturated thresholds behave like BernoulliT: t for p >= 1 yields
// zero-length skips (every trial fires), t for p <= 0 yields SkipNever
// (no trial ever fires).
func NewSkip(t Threshold) Skip {
	s := Skip{t: t}
	if p := t.Prob(); p > 0 && p < 1 {
		s.invLnQ = 1 / math.Log1p(-p)
		s.boundary = fastLogErr * -s.invLnQ
	}
	return s
}

// Prob returns the per-trial success probability the sampler encodes.
func (sk Skip) Prob() float64 { return sk.t.Prob() }

// SkipT returns the number of Bernoulli failures before the next success:
// the gap to skip before the next event. It is distributed Geometric(p) on
// {0, 1, 2, ...} with p = t.Prob(), computed by inverse-CDF from a single
// uniform draw on the same 53-bit lattice as BernoulliT.
//
// Draw-count contract: SkipT consumes exactly one raw draw from the
// underlying source for every call, including the saturated thresholds
// (p >= 1 returns 0, p <= 0 returns SkipNever). This mirrors BernoulliT's
// one-draw-per-call contract so configuration sweeps over p keep their
// streams aligned.
func (s *Stream) SkipT(sk Skip) int {
	u := s.next() >> 11
	switch {
	case sk.t >= 1<<bernoulliBits:
		return 0
	case sk.t == 0:
		return SkipNever
	}
	// v = 1-U in (0, 1]: u is uniform on {0, ..., 2^53-1}, so 2^53-u never
	// underflows to zero and the log argument stays finite.
	v := float64(uint64(1)<<bernoulliBits-u) * (1.0 / (1 << bernoulliBits))
	// Fast path: floor(fastLog(v) * invLnQ) equals the math.Log result
	// whenever the scaled value sits further than sk.boundary from an
	// integer — fastLog's absolute error (< fastLogErr) scaled by |invLnQ|
	// cannot move it across the floor. Draws inside the band (and scaled
	// values too large for unit float spacing) fall through to math.Log,
	// keeping SkipT's outputs bit-identical to the plain formula on every
	// draw; only their cost differs.
	if y := fastLog(v) * sk.invLnQ; y < 1<<40 {
		f := math.Floor(y)
		if y-f >= sk.boundary && f+1-y >= sk.boundary {
			return int(f)
		}
	}
	k := math.Log(v) * sk.invLnQ
	// Guard the float->int conversion: for p at the lattice floor (2^-53)
	// the largest achievable k is ~2^58.2, representable in int64, but
	// clamp anyway so a narrower int or a precision change cannot
	// overflow silently.
	if k >= SkipNever {
		return SkipNever
	}
	return int(k)
}

// fastLogErr bounds fastLog's absolute error against math.Log. The residual
// series truncates after the r^4 term; with |r| <= 2^-7 the first dropped
// term contributes under 6e-12, the tabulated ln(m0) and 1/m0 are correctly
// rounded, and the few remaining float roundings (the residual multiply,
// four polynomial steps, the e*ln2 recombination with |e| <= 53) stay below
// 1e-14 combined. 1e-8 leaves over three orders of magnitude of slack.
const fastLogErr = 1e-8

// fastLog's range reduction tables: entry i covers mantissas in
// [1+i/128, 1+(i+1)/128), storing ln(m0) and 1/m0 for the interval base m0.
// 2 KiB total, resident in L1 under the event engines' hot loops.
var (
	fastLogLn  [128]float64
	fastLogInv [128]float64
)

func init() {
	for i := range fastLogLn {
		m0 := 1 + float64(i)/128
		fastLogLn[i] = math.Log(m0)
		fastLogInv[i] = 1 / m0
	}
}

// fastLog is a cheap, division-free math.Log for the SkipT hot path: valid
// for finite normal v in (0, 1], absolute error < fastLogErr. It decomposes
// v into 2^e * m0 * (1+r) with m0 tabulated from the mantissa's top 7 bits
// (so r = m/m0 - 1 is one multiply) and evaluates ln(1+r) by a short
// alternating series.
func fastLog(v float64) float64 {
	bits := math.Float64bits(v)
	e := int(bits>>52) - 1023
	i := (bits >> 45) & 0x7F
	m := math.Float64frombits(bits&(1<<52-1) | 1023<<52)
	r := m*fastLogInv[i] - 1
	lnr := r * (1 + r*(-0.5+r*(1.0/3+r*(-0.25))))
	return float64(e)*math.Ln2 + fastLogLn[i] + lnr
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0, mirroring
// math/rand, because a zero-sized choice is always a caller bug.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := s.next()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Perm returns a pseudo-random permutation of [0,n) using Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success (support
// {0,1,2,...}). Used to fast-forward sparse insertion events in large
// Monte-Carlo runs. Panics if p is outside (0,1].
func (s *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	// Inverse CDF; u in [0,1) keeps the log argument in (0,1].
	return int(math.Log1p(-u) / math.Log1p(-p))
}

// Fork derives an independent Stream from this one. The derived stream's
// seed is drawn from the parent, so a single experiment seed fans out into
// arbitrarily many decorrelated streams deterministically.
//
// Fork is inherently sequential: the i-th forked stream depends on the
// parent's state after i-1 forks. Parallel trial runners that hand trial i
// to an arbitrary worker need random access instead — use DeriveSeed or
// Derived for that.
func (s *Stream) Fork() *Stream {
	return New(s.next())
}

// splitMixGamma is SplitMix64's Weyl-sequence increment (the golden-ratio
// constant of Steele et al., OOPSLA 2014).
const splitMixGamma = 0x9E3779B97F4A7C15

// DeriveSeed returns the seed of sub-stream i of the experiment seed base.
// It is the (i+1)-th output of SplitMix64(base), computed in O(1) by jumping
// the Weyl sequence directly to index i, so trial i receives the same seed
// no matter which worker computes it or in which order trials run.
//
// SplitMix64's output function is a bijection over distinct Weyl states, so
// for a fixed base every index yields a distinct seed, and the XorShift64Star
// streams seeded from them are decorrelated (each seed lands the generator at
// an unrelated point of its single 2^64-1 cycle; prefixes of practical length
// from adjacent indices do not overlap).
func DeriveSeed(base, i uint64) uint64 {
	z := base + (i+1)*splitMixGamma
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Derived returns a fresh Stream for sub-stream i of the experiment seed
// base: Derived(base, i) == New(DeriveSeed(base, i)). It is the random-access
// counterpart of Fork for sharded, order-independent trial execution.
func Derived(base, i uint64) *Stream {
	return New(DeriveSeed(base, i))
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}
