package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the public-domain splitmix64.c with seed 0.
	s := NewSplitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXorShiftNonZeroState(t *testing.T) {
	// Any seed must produce a usable generator, including seeds that
	// SplitMix64 maps close to zero.
	for seed := uint64(0); seed < 100; seed++ {
		x := NewXorShift64Star(seed)
		if x.state == 0 {
			t.Fatalf("seed %d produced zero state", seed)
		}
		a, b := x.Uint64(), x.Uint64()
		if a == b {
			t.Fatalf("seed %d produced repeated outputs %#x", seed, a)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliRate(t *testing.T) {
	for _, p := range []float64{1.0 / 79, 0.1, 0.5, 0.9} {
		s := New(uint64(p * 1e6))
		const n = 300000
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		// 5-sigma binomial tolerance.
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("Bernoulli(%v) rate = %v, want within %v", p, got, tol)
		}
	}
}

func TestBernoulliSaturation(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) fired")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) did not fire")
		}
	}
}

// countingSource counts raw draws so tests can pin the draw-count contract.
type countingSource struct {
	inner Source
	draws int
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.inner.Uint64()
}

func TestBernoulliDrawCountContract(t *testing.T) {
	// Every Bernoulli call must consume exactly one raw draw, including
	// saturated probabilities, so streams stay aligned across config sweeps
	// (e.g. a p=1 ablation next to a p=1/80 run sees the same downstream
	// draw sequence).
	for _, p := range []float64{0, 0.5, 1, -0.5, 1.5, math.NaN()} {
		src := &countingSource{inner: NewXorShift64Star(3)}
		s := NewStream(src)
		const calls = 257
		for i := 0; i < calls; i++ {
			s.Bernoulli(p)
		}
		if src.draws != calls {
			t.Errorf("Bernoulli(%v): %d calls consumed %d draws, want %d", p, calls, src.draws, calls)
		}
	}
}

func TestBernoulliTDrawCountContract(t *testing.T) {
	for _, tr := range []Threshold{0, 1, 1 << 52, 1 << 53} {
		src := &countingSource{inner: NewXorShift64Star(5)}
		s := NewStream(src)
		const calls = 100
		for i := 0; i < calls; i++ {
			s.BernoulliT(tr)
		}
		if src.draws != calls {
			t.Errorf("BernoulliT(%d): %d calls consumed %d draws, want %d", tr, calls, src.draws, calls)
		}
	}
}

func TestNewThresholdValues(t *testing.T) {
	cases := []struct {
		p    float64
		want Threshold
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{1, 1 << 53},
		{2, 1 << 53},
		{0.5, 1 << 52},
		{0.25, 1 << 51},
		{1.0 / (1 << 53), 1},
		{math.SmallestNonzeroFloat64, 1}, // ceil of any positive p is at least 1
	}
	for _, c := range cases {
		if got := NewThreshold(c.p); got != c.want {
			t.Errorf("NewThreshold(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// Prob round-trips exactly for dyadic probabilities.
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		if got := NewThreshold(p).Prob(); got != p {
			t.Errorf("NewThreshold(%v).Prob() = %v", p, got)
		}
	}
}

func TestBernoulliTBitIdenticalToFloatCompare(t *testing.T) {
	// The integer fast path must reproduce the historical float compare
	// `Float64() < p` decision for every draw, for any p in (0,1).
	ps := []float64{
		1.0 / 79, 1.0 / 80, 1.0 / 17, 1.0 / 41, 0.1, 0.5, 0.9,
		math.Nextafter(0, 1), math.Nextafter(1, 0), 1e-300, 0.3333333333333333,
	}
	check := func(seedBits uint64) bool {
		ps = append(ps, float64(seedBits>>11)/(1<<53)) // random lattice point
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p <= 0 || p >= 1 {
			continue
		}
		th := NewThreshold(p)
		ref := New(99)
		fast := New(99)
		for i := 0; i < 4096; i++ {
			want := ref.Float64() < p
			if got := fast.BernoulliT(th); got != want {
				t.Fatalf("p=%v draw %d: BernoulliT=%v, float compare=%v", p, i, got, want)
			}
		}
	}
}

func TestStreamDevirtualizedPathMatchesInterfacePath(t *testing.T) {
	// The cached-XorShift fast path must produce exactly the sequence the
	// interface path produces. hide the concrete type behind a wrapper so
	// NewStream cannot devirtualize it.
	type opaque struct{ Source }
	direct := New(31)
	viaIface := NewStream(opaque{NewXorShift64Star(31)})
	if direct.xs == nil {
		t.Fatal("New did not cache the concrete generator")
	}
	if viaIface.xs != nil {
		t.Fatal("wrapped source unexpectedly devirtualized")
	}
	for i := 0; i < 1000; i++ {
		if a, b := direct.Uint64(), viaIface.Uint64(); a != b {
			t.Fatalf("draw %d: devirtualized %#x != interface %#x", i, a, b)
		}
	}
}

func TestBernoulliTAllocationFree(t *testing.T) {
	s := New(1)
	th := NewThreshold(1.0 / 80)
	n := 0
	if avg := testing.AllocsPerRun(1000, func() {
		if s.BernoulliT(th) {
			n++
		}
	}); avg != 0 {
		t.Fatalf("BernoulliT allocates %v per call, want 0", avg)
	}
	_ = n
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 79, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d drawn %d times, want ~%v", n, v, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		s := New(seed)
		size := int(n%32) + 1
		p := s.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	p := 1.0 / 79
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if g := s.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	s.Geometric(0)
}

func TestSkipTDistributionMatchesBernoulliLoop(t *testing.T) {
	// The skip sampler replaces "count Bernoulli failures until the next
	// success" with a single inverse-CDF draw; both must sample the same
	// Geometric(p) gap distribution. Compare mean and variance of SkipT
	// gaps against gaps measured by looping BernoulliT over the same
	// threshold, with 5-sigma tolerances on each estimator.
	for _, p := range []float64{1.0 / 79, 1.0 / 16, 0.1, 0.5, 0.9} {
		th := NewThreshold(p)
		sk := NewSkip(th)
		const n = 200000

		skips := New(23)
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := float64(skips.SkipT(sk))
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		variance := sumSq/n - mean*mean

		loop := New(29)
		var lSum, lSumSq float64
		for i := 0; i < n; i++ {
			g := 0.0
			for !loop.BernoulliT(th) {
				g++
			}
			lSum += g
			lSumSq += g * g
		}
		lMean := lSum / n
		lVariance := lSumSq/n - lMean*lMean

		q := 1 - p
		wantMean := q / p
		wantVar := q / (p * p)
		// Standard error of the mean is sqrt(var/n). The variance
		// estimator's relative s.e. is ~sqrt((kappa+2)/n) where kappa is
		// the excess kurtosis, 6 + p^2/q for the geometric distribution.
		meanTol := 5 * math.Sqrt(wantVar/n)
		varTol := 5 * wantVar * math.Sqrt((6+p*p/q+2)/n)
		for _, c := range []struct {
			name      string
			got, want float64
			tol       float64
		}{
			{"SkipT mean", mean, wantMean, meanTol},
			{"SkipT variance", variance, wantVar, varTol},
			{"Bernoulli-loop mean", lMean, wantMean, meanTol},
			{"Bernoulli-loop variance", lVariance, wantVar, varTol},
		} {
			if math.Abs(c.got-c.want) > c.tol {
				t.Errorf("p=%v: %s = %v, want %v ± %v", p, c.name, c.got, c.want, c.tol)
			}
		}
	}
}

func TestSkipTDegenerateEdges(t *testing.T) {
	s := New(37)
	always := NewSkip(NewThreshold(1))
	over := NewSkip(NewThreshold(1.5))
	never := NewSkip(NewThreshold(0))
	under := NewSkip(NewThreshold(-0.5))
	nan := NewSkip(NewThreshold(math.NaN()))
	for i := 0; i < 100; i++ {
		if g := s.SkipT(always); g != 0 {
			t.Fatalf("SkipT(p=1) = %d, want 0", g)
		}
		if g := s.SkipT(over); g != 0 {
			t.Fatalf("SkipT(p=1.5) = %d, want 0", g)
		}
		if g := s.SkipT(never); g != SkipNever {
			t.Fatalf("SkipT(p=0) = %d, want SkipNever", g)
		}
		if g := s.SkipT(under); g != SkipNever {
			t.Fatalf("SkipT(p=-0.5) = %d, want SkipNever", g)
		}
		if g := s.SkipT(nan); g != SkipNever {
			t.Fatalf("SkipT(p=NaN) = %d, want SkipNever", g)
		}
	}
}

func TestSkipTDrawCountContract(t *testing.T) {
	// Like BernoulliT, every SkipT call must consume exactly one raw draw,
	// including the saturated thresholds, so event-engine streams stay
	// aligned across configuration sweeps.
	for _, tr := range []Threshold{0, 1, 1 << 46, 1 << 52, 1 << 53} {
		src := &countingSource{inner: NewXorShift64Star(7)}
		s := NewStream(src)
		sk := NewSkip(tr)
		const calls = 100
		for i := 0; i < calls; i++ {
			s.SkipT(sk)
		}
		if src.draws != calls {
			t.Errorf("SkipT(t=%d): %d calls consumed %d draws, want %d", tr, calls, src.draws, calls)
		}
	}
}

func TestSkipTNonNegativeAndFinite(t *testing.T) {
	// The smallest representable p maximizes the skip; even there the
	// inverse CDF must stay non-negative and below the SkipNever sentinel.
	for _, tr := range []Threshold{1, 2, 1 << 20, NewThreshold(1.0 / 79)} {
		s := New(41)
		sk := NewSkip(tr)
		for i := 0; i < 100000; i++ {
			g := s.SkipT(sk)
			if g < 0 || g >= SkipNever {
				t.Fatalf("SkipT(t=%d) = %d out of range", tr, g)
			}
		}
	}
}

// fixedSource replays one preset raw draw so a test can feed SkipT an exact
// lattice point.
type fixedSource struct{ val uint64 }

func (f *fixedSource) Uint64() uint64 { return f.val }

// TestSkipTFastPathBitIdenticalToReference pins SkipT's polynomial-log fast
// path to the plain floor(log(v)/log(q)) formula on every draw: random
// lattice points plus adversarial ones sitting right at the integer
// boundaries of the scaled log, where an unguarded approximate log would
// floor to the wrong gap.
func TestSkipTFastPathBitIdenticalToReference(t *testing.T) {
	ref := func(u uint64, sk Skip) int {
		v := float64(uint64(1)<<bernoulliBits-u) * (1.0 / (1 << bernoulliBits))
		k := math.Log(v) * sk.invLnQ
		if k >= SkipNever {
			return SkipNever
		}
		return int(k)
	}
	at := func(u uint64, sk Skip) int {
		s := NewStream(&fixedSource{val: u << 11})
		return s.SkipT(sk)
	}
	for _, p := range []float64{1.0 / 79, 0.5, 2.0 / 3, 0.01, 1e-4, 1e-9, 0.999, 1 - 1e-12} {
		sk := NewSkip(NewThreshold(p))
		var us []uint64
		// The exact u where the reference first returns k, for the first 60
		// boundaries (binary search works because ref is nondecreasing in u),
		// and its immediate neighbors.
		for k, top := 1, ref(1<<bernoulliBits-1, sk); k <= 60 && k <= top; k++ {
			lo, hi := uint64(0), uint64(1)<<bernoulliBits-1
			for lo < hi {
				mid := lo + (hi-lo)/2
				if ref(mid, sk) >= k {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			for d := int64(-2); d <= 2; d++ {
				if u := int64(lo) + d; u >= 0 && u < 1<<bernoulliBits {
					us = append(us, uint64(u))
				}
			}
		}
		r := New(uint64(math.Float64bits(p)))
		for i := 0; i < 20_000; i++ {
			us = append(us, r.Uint64()>>11)
		}
		for _, u := range us {
			if got, want := at(u, sk), ref(u, sk); got != want {
				t.Fatalf("p=%g u=%d: SkipT = %d, reference = %d", p, u, got, want)
			}
		}
	}
}

func TestSkipTAllocationFree(t *testing.T) {
	s := New(1)
	sk := NewSkip(NewThreshold(1.0 / 80))
	n := 0
	if avg := testing.AllocsPerRun(1000, func() {
		n += s.SkipT(sk)
	}); avg != 0 {
		t.Fatalf("SkipT allocates %v per call, want 0", avg)
	}
	_ = n
}

func TestForkDecorrelated(t *testing.T) {
	parent := New(21)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams collided on %d of 1000 draws", same)
	}
}

func TestDeriveSeedMatchesSplitMixSequence(t *testing.T) {
	// DeriveSeed(base, i) is specified as the (i+1)-th SplitMix64(base)
	// output, computed by an O(1) jump; verify the jump against the
	// sequential generator.
	for _, base := range []uint64{0, 1, 42, 0xDEADBEEF, math.MaxUint64} {
		sm := NewSplitMix64(base)
		for i := uint64(0); i < 100; i++ {
			want := sm.Uint64()
			if got := DeriveSeed(base, i); got != want {
				t.Fatalf("DeriveSeed(%#x, %d) = %#x, want %#x", base, i, got, want)
			}
		}
	}
}

func TestDeriveSeedDistinctAcrossIndices(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 100_000; i++ {
		s := DeriveSeed(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d derive the same seed %#x", prev, i, s)
		}
		seen[s] = i
	}
}

func TestDerivedAdjacentStreamsNonOverlapping(t *testing.T) {
	// The guarantee parallel sharding relies on: the output prefixes of
	// sub-streams at adjacent indices must not overlap. Draw a long prefix
	// from each of a handful of adjacent streams and check pairwise that no
	// value appears in more than one (a shared value would mean the streams
	// sit at overlapping offsets of the XorShift cycle; unrelated offsets
	// collide on any given 64-bit value with probability ~2^-44 here).
	const draws = 20_000
	for _, base := range []uint64{1, 99, 0xABCDEF} {
		prefix := map[uint64]int{}
		for i := uint64(0); i < 4; i++ {
			s := Derived(base, i)
			for d := 0; d < draws; d++ {
				v := s.Uint64()
				if other, dup := prefix[v]; dup && other != int(i) {
					t.Fatalf("base %d: streams %d and %d share value %#x within %d draws",
						base, other, i, v, draws)
				}
				prefix[v] = int(i)
			}
		}
	}
}

func TestDerivedIsRandomAccess(t *testing.T) {
	// Trial i must get the same stream no matter when or where it is
	// derived: Derived is a pure function of (base, i).
	a := Derived(123, 5)
	_ = Derived(123, 999).Uint64() // unrelated derivation in between
	b := Derived(123, 5)
	for d := 0; d < 100; d++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("Derived(123,5) not reproducible at draw %d: %#x vs %#x", d, av, bv)
		}
	}
}

func TestPCG32Deterministic(t *testing.T) {
	a := NewPCG32(42, 54)
	b := NewPCG32(42, 54)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("PCG32 not deterministic")
		}
	}
	c := NewPCG32(42, 55) // different stream must diverge
	d := NewPCG32(42, 54)
	diff := false
	for i := 0; i < 100; i++ {
		if c.Uint32() != d.Uint32() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("PCG32 streams 54 and 55 identical")
	}
}

func TestMul128(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%#x,%#x) = (%#x,%#x), want (%#x,%#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkXorShift64Star(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	s := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Bernoulli(1.0 / 79) {
			n++
		}
	}
	_ = n
}

func BenchmarkBernoulliT(b *testing.B) {
	s := New(1)
	th := NewThreshold(1.0 / 79)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.BernoulliT(th) {
			n++
		}
	}
	_ = n
}
