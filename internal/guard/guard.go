// Package guard carries the runtime invariant checks the simulation engines
// run when self-checking is enabled (-selfcheck). A tripped guard panics
// with a *Violation, a value the campaign layers recognise: an event-engine
// trial whose guard trips is re-run on the exact reference engine and the
// divergence is counted, instead of aborting the whole campaign.
//
// Guards follow the MINT/DAPPER philosophy the trackers themselves use:
// state the minimal invariants explicitly and verify them where they could
// break, so a silent corruption (an engine bug, a bad refactor, a cosmic
// ray in a week-long sweep) surfaces as a named invariant with a component
// and a detail string rather than as slightly-wrong statistics.
//
// The checks are written to be cheap — integer compares on values the hot
// path already holds — and every call site is gated behind a self-check
// flag, so disabled guards cost one predictable branch.
package guard

import (
	"errors"
	"fmt"
)

// Violation is the panic payload of a tripped invariant guard.
type Violation struct {
	// Component names the subsystem whose invariant tripped
	// ("memctrl", "dram.bank", "pride", "montecarlo.event", ...).
	Component string
	// Invariant names the violated property ("fifo-occupancy",
	// "raa-bound", "gap-accounting", ...).
	Invariant string
	// Detail carries the observed values.
	Detail string
}

// Error implements error, so a recovered Violation can travel inside
// trialrunner's PanicError and still be identified with errors.As.
func (v *Violation) Error() string {
	return fmt.Sprintf("guard: %s: invariant %q violated: %s", v.Component, v.Invariant, v.Detail)
}

// Failf panics with a *Violation for the given component and invariant.
// Call sites keep the hot path branch-only:
//
//	if occ > n {
//		guard.Failf("pride", "fifo-occupancy", "occ %d > entries %d", occ, n)
//	}
func Failf(component, invariant, format string, args ...any) {
	panic(&Violation{Component: component, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// AsViolation reports whether a recovered panic value is (or wraps) a guard
// violation. It accepts the raw recover() value: a *Violation, any error
// wrapping one, or anything else (reported as not-a-violation).
func AsViolation(v any) (*Violation, bool) {
	switch x := v.(type) {
	case *Violation:
		return x, true
	case error:
		var g *Violation
		if errors.As(x, &g) {
			return g, true
		}
	}
	return nil, false
}

// Run executes f, recovering a guard Violation into the second return value
// while letting every other panic propagate unchanged — the campaign layers
// use it to re-run a tripped event-engine trial on the exact engine instead
// of aborting, without swallowing genuine bugs.
func Run[T any](f func() T) (out T, v *Violation) {
	defer func() {
		if r := recover(); r != nil {
			if gv, ok := AsViolation(r); ok {
				v = gv
				return
			}
			panic(r)
		}
	}()
	return f(), nil
}
