package guard

import (
	"fmt"
	"strings"
	"testing"
)

func TestFailfPanicsWithViolation(t *testing.T) {
	defer func() {
		v, ok := AsViolation(recover())
		if !ok {
			t.Fatal("recovered value is not a *Violation")
		}
		if v.Component != "pride" || v.Invariant != "fifo-occupancy" {
			t.Fatalf("violation fields: %+v", v)
		}
		if !strings.Contains(v.Detail, "occ 5 > entries 4") {
			t.Fatalf("detail not formatted: %q", v.Detail)
		}
		msg := v.Error()
		for _, want := range []string{"guard:", "pride", "fifo-occupancy", "occ 5 > entries 4"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("Error() missing %q: %q", want, msg)
			}
		}
	}()
	Failf("pride", "fifo-occupancy", "occ %d > entries %d", 5, 4)
	t.Fatal("Failf returned")
}

func TestAsViolationRecognisesWrappedErrors(t *testing.T) {
	v := &Violation{Component: "memctrl", Invariant: "raa-bound", Detail: "raa 41 >= threshold 40"}
	wrapped := fmt.Errorf("trial 3 panicked: %w", v)
	got, ok := AsViolation(wrapped)
	if !ok || got != v {
		t.Fatalf("AsViolation(wrapped) = %v, %v", got, ok)
	}
	if _, ok := AsViolation("some other panic"); ok {
		t.Fatal("plain string recognised as violation")
	}
	if _, ok := AsViolation(fmt.Errorf("unrelated")); ok {
		t.Fatal("unrelated error recognised as violation")
	}
	if _, ok := AsViolation(nil); ok {
		t.Fatal("nil recognised as violation")
	}
}

func TestRunRecoversViolationAndPassesResult(t *testing.T) {
	got, v := Run(func() int { return 42 })
	if got != 42 || v != nil {
		t.Fatalf("Run(clean) = %d, %v", got, v)
	}
	_, v = Run(func() int {
		Failf("sim.event", "forced-trip", "injected")
		return 0
	})
	if v == nil {
		t.Fatal("Run did not recover the violation")
	}
	if v.Component != "sim.event" || v.Invariant != "forced-trip" {
		t.Fatalf("recovered violation: %+v", v)
	}
}

func TestRunLetsForeignPanicsPropagate(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("foreign panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "genuine bug" {
			t.Fatalf("recovered %v, want the original panic value", r)
		}
	}()
	Run(func() int { panic("genuine bug") })
	t.Fatal("Run returned after a foreign panic")
}
