package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"pride/internal/cli"
)

// shortArgs shrinks the experiment so a smoke run finishes in test time
// while still measuring at least one failing point.
func shortArgs(extra ...string) []string {
	base := []string{"-trhd", "150", "-banks", "2", "-trials", "3", "-horizon", "30000"}
	return append(base, extra...)
}

func TestRunProducesMeasurementTable(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), shortArgs("-workers", "2"), &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Measured vs analytic system TTF", "PrIDE", "150"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSchemeMINT(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), shortArgs("-scheme", "MINT", "-workers", "2"), &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "MINT") {
		t.Fatalf("output missing the MINT scheme name:\n%s", out.String())
	}
}

func TestRunRejectsUnmeasurableSchemes(t *testing.T) {
	// MOAT never fails below ATO, so a TTF measurement is rejected with an
	// explanation rather than silently reporting an infinite MTTF.
	var out, errOut strings.Builder
	if code := run(context.Background(), shortArgs("-scheme", "MOAT"), &out, &errOut); code != 2 {
		t.Fatalf("-scheme MOAT: exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "deterministic") {
		t.Fatalf("-scheme MOAT: no explanation on stderr: %q", errOut.String())
	}
	if code := run(context.Background(), shortArgs("-scheme", "bogus"), &out, &errOut); code != 2 {
		t.Fatalf("-scheme bogus: exit code %d, want 2", code)
	}
	if code := run(context.Background(), shortArgs("-scheme", "MINT", "-rfm", "16"), &out, &errOut); code != 2 {
		t.Fatalf("-scheme MINT -rfm 16: exit code %d, want 2", code)
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	// The whole report must be byte-identical across -workers values.
	render := func(workers string) string {
		var out, errOut strings.Builder
		if code := run(context.Background(), shortArgs("-workers", workers), &out, &errOut); code != 0 {
			t.Fatalf("workers=%s: exit code %d, stderr: %s", workers, code, errOut.String())
		}
		return out.String()
	}
	want := render("1")
	for _, workers := range []string{"2", "4"} {
		if got := render(workers); got != want {
			t.Fatalf("-workers %s output differs from -workers 1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

func TestRunRejectsBadWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-2"} {
		var out, errOut strings.Builder
		if code := run(context.Background(), shortArgs("-workers", bad), &out, &errOut); code != 2 {
			t.Errorf("-workers %s: exit code %d, want 2", bad, code)
		}
		if !strings.Contains(errOut.String(), "workers") {
			t.Errorf("-workers %s: no diagnostic on stderr: %q", bad, errOut.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad rfm":      shortArgs("-rfm", "7"),
		"zero trials":  {"-trhd", "150", "-trials", "0"},
		"unknown flag": {"-definitely-not-a-flag"},
	}
	for name, args := range cases {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("%s: exit code %d, want 2", name, code)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), shortArgs("-workers", "2", "-csv"), &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), ",") {
		t.Fatalf("CSV mode produced no comma-separated output:\n%s", out.String())
	}
}

func TestRunInterruptedExitsWithResumeHint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGINT before any trial completes
	base := filepath.Join(t.TempDir(), "ttf.ckpt")
	var out, errOut strings.Builder
	code := run(ctx, shortArgs("-checkpoint", base), &out, &errOut)
	if code != cli.ExitInterrupted {
		t.Fatalf("exit code %d, want %d; stderr: %s", code, cli.ExitInterrupted, errOut.String())
	}
	if !strings.Contains(errOut.String(), "resume") {
		t.Fatalf("no resume hint on stderr: %q", errOut.String())
	}
}

func TestRunCheckpointedMatchesPlain(t *testing.T) {
	var plain, plainErr strings.Builder
	if code := run(context.Background(), shortArgs("-workers", "2"), &plain, &plainErr); code != 0 {
		t.Fatalf("plain run failed: %d", code)
	}
	base := filepath.Join(t.TempDir(), "ttf.ckpt")
	var ckpt, ckptErr strings.Builder
	if code := run(context.Background(), shortArgs("-workers", "3", "-checkpoint", base), &ckpt, &ckptErr); code != 0 {
		t.Fatalf("checkpointed run failed: %d", code)
	}
	if ckpt.String() != plain.String() {
		t.Fatal("checkpointed stdout differs from plain run")
	}
}
