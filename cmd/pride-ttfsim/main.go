// Command pride-ttfsim validates the paper's time-to-failure math
// empirically: it simulates a whole multi-bank system under continuous
// double-sided attack at low device thresholds (where failures happen within
// simulable time) and compares the measured mean time-to-fail against the
// analytic guarantee that generates Table IX.
//
// The analytic model is deliberately pessimistic (worst insertion position,
// worst start occupancy, maximum tardiness), so the measured TTF must sit
// ABOVE the prediction — by a large factor at tiny thresholds, converging as
// the threshold grows past the tardiness term.
//
// Usage:
//
//	pride-ttfsim                       # sweep victim thresholds
//	pride-ttfsim -trhd 300 -trials 50  # one device class, more trials
package main

import (
	"flag"
	"fmt"
	"os"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/report"
	"pride/internal/sim"
	"pride/internal/system"
)

func main() {
	var (
		trhd    = flag.Int("trhd", 0, "device TRH-D to test (0 = sweep 150..500)")
		banks   = flag.Int("banks", 4, "concurrently attacked banks")
		trials  = flag.Int("trials", 10, "independent trials per point")
		horizon = flag.Int("horizon", 200_000, "simulation horizon in tREFI")
		seed    = flag.Uint64("seed", 1, "base seed")
		rfm     = flag.Int("rfm", 0, "RFM threshold (0 = plain PrIDE)")
		csv     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	params := dram.DDR5()
	params.RowsPerBank = 4096
	params.RowBits = 12

	scheme := sim.PrIDEScheme()
	analyticScheme := analytic.SchemePrIDE
	switch *rfm {
	case 0:
	case 16:
		scheme = sim.PrIDERFMScheme(16)
		analyticScheme = analytic.SchemePrIDERFM16
	case 40:
		scheme = sim.PrIDERFMScheme(40)
		analyticScheme = analytic.SchemePrIDERFM40
	default:
		fmt.Fprintln(os.Stderr, "-rfm must be 0, 16 or 40")
		os.Exit(2)
	}
	r := analytic.EvaluateScheme(analyticScheme, params, analytic.DefaultTargetTTFYears)

	points := []int{150, 200, 250, 300, 400, 500}
	if *trhd > 0 {
		points = []int{*trhd}
	}

	t := report.NewTable(
		fmt.Sprintf("Measured vs analytic system TTF (%s, %d banks, %d trials/point)",
			scheme.Name, *banks, *trials),
		"Device TRH-D", "Failed Trials", "Measured MTTF", "Analytic Guarantee", "Margin (x)")
	for _, d := range points {
		victimThreshold := 2 * d // the shared victim absorbs both aggressors' hammers
		cfg := system.Config{Params: params, Banks: *banks, TRH: victimThreshold, MaxTREFI: *horizon}
		mean, failed := system.MeasureMTTF(cfg, scheme, *trials, *seed+uint64(d))
		predicted := analytic.SystemTTFYears(r, float64(victimThreshold), *banks) * analytic.SecondsPerYear
		if failed == 0 {
			t.AddRow(d, fmt.Sprintf("0/%d", *trials), "> horizon",
				report.FormatTTFYears(predicted/analytic.SecondsPerYear), "-")
			continue
		}
		t.AddRow(d,
			fmt.Sprintf("%d/%d", failed, *trials),
			fmt.Sprintf("%.3gs", mean),
			fmt.Sprintf("%.3gs", predicted),
			fmt.Sprintf("%.1f", mean/predicted))
	}
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
	fmt.Println("\nMargin > 1 everywhere confirms the analytic model is a sound (pessimistic)")
	fmt.Println("guarantee; the margin shrinks as TRH-D grows beyond the tardiness term N*W.")
}
