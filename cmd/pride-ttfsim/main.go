// Command pride-ttfsim validates the paper's time-to-failure math
// empirically: it simulates a whole multi-bank system under continuous
// double-sided attack at low device thresholds (where failures happen within
// simulable time) and compares the measured mean time-to-fail against the
// analytic guarantee that generates Table IX.
//
// The analytic model is deliberately pessimistic (worst insertion position,
// worst start occupancy, maximum tardiness), so the measured TTF must sit
// ABOVE the prediction — by a large factor at tiny thresholds, converging as
// the threshold grows past the tardiness term.
//
// Usage:
//
//	pride-ttfsim                       # sweep victim thresholds
//	pride-ttfsim -trhd 300 -trials 50  # one device class, more trials
//	pride-ttfsim -workers 1            # serial execution
//	pride-ttfsim -checkpoint ttf.ckpt -progress-every 10s
//
// With -checkpoint, an interrupted (SIGINT) run saves every completed trial
// (one file per threshold point) and a rerun of the identical command
// resumes them, producing output bit-identical to an uninterrupted run at
// any -workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"pride/internal/analytic"
	"pride/internal/cli"
	"pride/internal/dram"
	"pride/internal/report"
	"pride/internal/sim"
	"pride/internal/system"
	"pride/internal/trialrunner"
)

func main() {
	ctx, cancel := cli.SignalContext()
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI surface (flag
// parsing, error paths, exit codes) is testable. ctx cancellation (SIGINT in
// production) drains the trial pool gracefully: in-flight trials finish,
// land in the checkpoint when one is configured, and the process exits 130
// with a resume hint.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-ttfsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trhd    = fs.Int("trhd", 0, "device TRH-D to test (0 = sweep 150..500)")
		banks   = fs.Int("banks", 4, "concurrently attacked banks")
		trials  = fs.Int("trials", 20, "independent trials per point")
		horizon = fs.Int("horizon", 200_000, "simulation horizon in tREFI")
		seed    = fs.Uint64("seed", 1, "base seed")
		rfm     = fs.Int("rfm", 0, "RFM threshold (0 = plain PrIDE)")
		schemeN = fs.String("scheme", "",
			`tracker to measure: empty = PrIDE (see -rfm), or "MINT". MOAT is rejected: it is deterministic and cannot fail below ATO, so a TTF measurement is meaningless`)
		csv     = fs.Bool("csv", false, "emit CSV")
		workers = fs.Int("workers", trialrunner.DefaultWorkers(),
			"worker goroutines for the trial pool (>= 1; 1 = serial; results are worker-count invariant)")
		cf cli.CampaignFlags
		pf cli.ProfileFlags
	)
	cf.Register(fs)
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := trialrunner.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *trials < 1 {
		fmt.Fprintln(stderr, "-trials must be >= 1")
		return 2
	}
	ctx, stopChaos, faults, err := cf.ChaosContext(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer stopChaos()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	params := dram.DDR5()
	params.RowsPerBank = 4096
	params.RowBits = 12

	scheme := sim.PrIDEScheme()
	analyticScheme := analytic.SchemePrIDE
	switch *schemeN {
	case "", "PrIDE":
		switch *rfm {
		case 0:
		case 16:
			scheme = sim.PrIDERFMScheme(16)
			analyticScheme = analytic.SchemePrIDERFM16
		case 40:
			scheme = sim.PrIDERFMScheme(40)
			analyticScheme = analytic.SchemePrIDERFM40
		default:
			fmt.Fprintln(stderr, "-rfm must be 0, 16 or 40")
			return 2
		}
	case "MINT":
		if *rfm != 0 {
			fmt.Fprintln(stderr, "-rfm applies only to PrIDE; MINT has no RFM co-design here")
			return 2
		}
		scheme = sim.MINTScheme()
		analyticScheme = analytic.SchemeMINT
	case "MOAT":
		fmt.Fprintln(stderr, "-scheme MOAT is rejected: MOAT is deterministic (no row exceeds ATO = 128 activations), so it never fails at the thresholds this tool sweeps and a mean-time-to-fail is undefined")
		return 2
	default:
		fmt.Fprintf(stderr, "-scheme must be empty, PrIDE or MINT, got %q\n", *schemeN)
		return 2
	}
	r := analytic.EvaluateScheme(analyticScheme, params, analytic.DefaultTargetTTFYears)

	points := []int{150, 200, 250, 300, 400, 500}
	if *trhd > 0 {
		points = []int{*trhd}
	}

	t := report.NewTable(
		fmt.Sprintf("Measured vs analytic system TTF (%s, %d banks, %d trials/point)",
			scheme.Name, *banks, *trials),
		"Device TRH-D", "Failed Trials", "Measured MTTF", "Analytic Guarantee", "Margin (x)")
	for _, d := range points {
		victimThreshold := 2 * d // the shared victim absorbs both aggressors' hammers
		cfg := system.Config{Params: params, Banks: *banks, TRH: victimThreshold, MaxTREFI: *horizon}
		// One campaign (and one checkpoint file) per threshold point: each
		// point resumes independently and the progress meter names it.
		section := fmt.Sprintf("ttf-trhd%d", d)
		camp, stop := cf.StartCampaign(ctx, section, *trials, *workers, stderr)
		mean, failed, err := system.MeasureMTTFCampaign(ctx, cfg, scheme, *trials, *seed+uint64(d), system.CampaignOptions{
			Workers:    *workers,
			Checkpoint: cf.CheckpointAt(section),
			Progress:   camp,
			Observer:   camp,
			Engine:     cf.Engine.Kind,
			SelfCheck:  cf.SelfCheck,
			Retry:      cf.RetryPolicy(),
			Faults:     faults,
		})
		stop()
		if err != nil {
			return cli.FailureCode(err, cf.Checkpoint, stderr)
		}
		predicted := analytic.SystemTTFYears(r, float64(victimThreshold), *banks) * analytic.SecondsPerYear
		if failed == 0 {
			t.AddRow(d, fmt.Sprintf("0/%d", *trials), "> horizon",
				report.FormatTTFYears(predicted/analytic.SecondsPerYear), "-")
			continue
		}
		t.AddRow(d,
			fmt.Sprintf("%d/%d", failed, *trials),
			fmt.Sprintf("%.3gs", mean),
			fmt.Sprintf("%.3gs", predicted),
			fmt.Sprintf("%.1f", mean/predicted))
	}
	if *csv {
		t.CSV(stdout)
	} else {
		t.Render(stdout)
	}
	fmt.Fprintln(stdout, "\nMargin > 1 everywhere confirms the analytic model is a sound (pessimistic)")
	fmt.Fprintln(stdout, "guarantee; the margin shrinks as TRH-D grows beyond the tardiness term N*W.")
	return 0
}
