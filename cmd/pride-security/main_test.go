package main

import (
	"strings"
	"testing"

	"pride/internal/analytic"
	"pride/internal/dram"
)

func TestEveryTableBuilderProducesRows(t *testing.T) {
	p := dram.DDR5()
	const ttf = analytic.DefaultTargetTTFYears
	builders := map[string]func() string{
		"table1":  func() string { return table1(p).String() },
		"table2":  func() string { return table2().String() },
		"fig8":    func() string { return fig8(p, 20_000, 1, 2).String() },
		"table3":  func() string { return table3(p, ttf).String() },
		"fig9":    func() string { return fig9(p, ttf).String() },
		"table4":  func() string { return table4(p, ttf).String() },
		"table5":  func() string { return table5(p, ttf).String() },
		"table6":  func() string { return table6(p, ttf).String() },
		"table8":  func() string { return table8(p).String() },
		"table9":  func() string { return table9(p).String() },
		"table11": func() string { return table11().String() },
		"table12": func() string { return table12(p, ttf).String() },
	}
	for name, build := range builders {
		out := build()
		if lines := strings.Count(out, "\n"); lines < 4 {
			t.Errorf("%s: only %d lines:\n%s", name, lines, out)
		}
	}
}

func TestTable9ShowsTheCliffs(t *testing.T) {
	out := table9(dram.DDR5()).String()
	// The Table IX story: plain PrIDE protects million-year at today's
	// thresholds and collapses below ~1200.
	if !strings.Contains(out, "> 1 Mln years") {
		t.Fatalf("missing the >1Mln regime:\n%s", out)
	}
	if !strings.Contains(out, "< 1 sec") {
		t.Fatalf("missing the sub-second collapse:\n%s", out)
	}
}

func TestTable11ShowsPrIDEConstantStorage(t *testing.T) {
	out := table11().String()
	if strings.Count(out, "10 bytes") != 2 {
		t.Fatalf("PrIDE must cost 10 bytes at both thresholds:\n%s", out)
	}
	if !strings.Contains(out, "MB") {
		t.Fatalf("counter trackers must reach MB scale at TRH-D=400:\n%s", out)
	}
}

func TestFig8TableHasAllPositions(t *testing.T) {
	p := dram.DDR5()
	tbl := fig8(p, 5_000, 1, 1)
	out := tbl.String()
	// Header + separator + title + one row per position.
	want := p.ACTsPerTREFI() + 3
	if got := strings.Count(strings.TrimSpace(out), "\n") + 1; got != want {
		t.Fatalf("fig8 rows = %d, want %d", got, want)
	}
}

func TestFig8WorkerCountInvariant(t *testing.T) {
	// The headline determinism guarantee at the CLI layer: the rendered
	// Fig 8 table is byte-identical for every -workers value.
	p := dram.DDR5()
	want := fig8(p, 30_000, 9, 1).String()
	for _, workers := range []int{2, 4, 7} {
		if got := fig8(p, 30_000, 9, workers).String(); got != want {
			t.Fatalf("fig8 output differs between -workers 1 and -workers %d", workers)
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-table", "11", "-workers", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table XI") {
		t.Fatalf("table missing from output:\n%s", out.String())
	}
}

func TestRunRejectsBadWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-3"} {
		var out, errOut strings.Builder
		if code := run([]string{"-table", "11", "-workers", bad}, &out, &errOut); code != 2 {
			t.Errorf("-workers %s: exit code %d, want 2", bad, code)
		}
		if !strings.Contains(errOut.String(), "workers") {
			t.Errorf("-workers %s: no diagnostic on stderr: %q", bad, errOut.String())
		}
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("empty selection: exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nothing selected") {
		t.Fatalf("missing usage hint: %q", errOut.String())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		10:              "10 bytes",
		42.5 * 1024:     "42.5 KB",
		3 * 1024 * 1024: "3.00 MB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Errorf("formatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}
