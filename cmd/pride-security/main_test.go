package main

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pride/internal/analytic"
	"pride/internal/cli"
	"pride/internal/dram"
	"pride/internal/engine"
	"pride/internal/montecarlo"
	"pride/internal/trialrunner"
)

// fig8Quiet calls fig8 with no campaign features enabled, the way the other
// table builders are exercised.
func fig8Quiet(t *testing.T, p dram.Params, periods int, seed uint64, workers int) string {
	t.Helper()
	tbl, err := fig8(context.Background(), p, periods, seed, workers, cli.CampaignFlags{}, nil, io.Discard)
	if err != nil {
		t.Fatalf("fig8: %v", err)
	}
	return tbl.String()
}

func TestEveryTableBuilderProducesRows(t *testing.T) {
	p := dram.DDR5()
	const ttf = analytic.DefaultTargetTTFYears
	builders := map[string]func() string{
		"table1":  func() string { return table1(p).String() },
		"table2":  func() string { return table2().String() },
		"fig8":    func() string { return fig8Quiet(t, p, 20_000, 1, 2) },
		"table3":  func() string { return table3(p, ttf).String() },
		"fig9":    func() string { return fig9(p, ttf).String() },
		"table4":  func() string { return table4(p, ttf).String() },
		"table5":  func() string { return table5(p, ttf).String() },
		"table6":  func() string { return table6(p, ttf).String() },
		"table8":  func() string { return table8(p).String() },
		"table9":  func() string { return table9(p).String() },
		"table11": func() string { return table11().String() },
		"table12": func() string { return table12(p, ttf).String() },
		"zoo":     func() string { return zooTable(p, ttf).String() },
	}
	for name, build := range builders {
		out := build()
		if lines := strings.Count(out, "\n"); lines < 4 {
			t.Errorf("%s: only %d lines:\n%s", name, lines, out)
		}
	}
}

func TestZooTableCoversTheZoo(t *testing.T) {
	out := zooTable(dram.DDR5(), analytic.DefaultTargetTTFYears).String()
	for _, scheme := range []string{"PrIDE", "MINT", "MOAT", "PARFM"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("zoo table missing %s:\n%s", scheme, out)
		}
	}
	// MOAT's deterministic row: TRH* is exactly the ATO threshold.
	if !strings.Contains(out, "128") {
		t.Errorf("zoo table missing MOAT's deterministic TRH* 128:\n%s", out)
	}
}

func TestRunZooFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-zoo"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Tracker zoo") || !strings.Contains(out.String(), "MINT") {
		t.Fatalf("-zoo output incomplete:\n%s", out.String())
	}
}

func TestTable9ShowsTheCliffs(t *testing.T) {
	out := table9(dram.DDR5()).String()
	// The Table IX story: plain PrIDE protects million-year at today's
	// thresholds and collapses below ~1200.
	if !strings.Contains(out, "> 1 Mln years") {
		t.Fatalf("missing the >1Mln regime:\n%s", out)
	}
	if !strings.Contains(out, "< 1 sec") {
		t.Fatalf("missing the sub-second collapse:\n%s", out)
	}
}

func TestTable11ShowsPrIDEConstantStorage(t *testing.T) {
	out := table11().String()
	if strings.Count(out, "10 bytes") != 2 {
		t.Fatalf("PrIDE must cost 10 bytes at both thresholds:\n%s", out)
	}
	if !strings.Contains(out, "MB") {
		t.Fatalf("counter trackers must reach MB scale at TRH-D=400:\n%s", out)
	}
}

func TestFig8TableHasAllPositions(t *testing.T) {
	p := dram.DDR5()
	out := fig8Quiet(t, p, 5_000, 1, 1)
	// Header + separator + title + one row per position.
	want := p.ACTsPerTREFI() + 3
	if got := strings.Count(strings.TrimSpace(out), "\n") + 1; got != want {
		t.Fatalf("fig8 rows = %d, want %d", got, want)
	}
}

func TestFig8WorkerCountInvariant(t *testing.T) {
	// The headline determinism guarantee at the CLI layer: the rendered
	// Fig 8 table is byte-identical for every -workers value.
	p := dram.DDR5()
	want := fig8Quiet(t, p, 30_000, 9, 1)
	for _, workers := range []int{2, 4, 7} {
		if got := fig8Quiet(t, p, 30_000, 9, workers); got != want {
			t.Fatalf("fig8 output differs between -workers 1 and -workers %d", workers)
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-table", "11", "-workers", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table XI") {
		t.Fatalf("table missing from output:\n%s", out.String())
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run(context.Background(),
		[]string{"-table", "11", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestRunRejectsBadProfilePath(t *testing.T) {
	var out, errOut strings.Builder
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")
	if code := run(context.Background(), []string{"-table", "11", "-cpuprofile", bad}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "CPU profile") {
		t.Fatalf("no diagnostic on stderr: %q", errOut.String())
	}
}

func TestRunRejectsBadWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-3"} {
		var out, errOut strings.Builder
		if code := run(context.Background(), []string{"-table", "11", "-workers", bad}, &out, &errOut); code != 2 {
			t.Errorf("-workers %s: exit code %d, want 2", bad, code)
		}
		if !strings.Contains(errOut.String(), "workers") {
			t.Errorf("-workers %s: no diagnostic on stderr: %q", bad, errOut.String())
		}
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), nil, &out, &errOut); code != 2 {
		t.Fatalf("empty selection: exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nothing selected") {
		t.Fatalf("missing usage hint: %q", errOut.String())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		10:              "10 bytes",
		42.5 * 1024:     "42.5 KB",
		3 * 1024 * 1024: "3.00 MB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Errorf("formatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func fig8TestConfig() (montecarlo.LossConfig, uint64) {
	w := dram.DDR5().ACTsPerTREFI()
	return montecarlo.LossConfig{
		Entries: 1, Window: w, InsertionProb: 1 / float64(w), Periods: 40_000,
	}, 3
}

func TestRunFig8ResumesFromCheckpointBitIdentical(t *testing.T) {
	args := func(extra ...string) []string {
		return append([]string{"-fig", "8", "-mc-periods", "40000", "-seed", "3", "-workers", "2"}, extra...)
	}
	var plain, plainErr strings.Builder
	if code := run(context.Background(), args(), &plain, &plainErr); code != 0 {
		t.Fatalf("uninterrupted run failed (%d): %s", code, plainErr.String())
	}

	// Fabricate the interrupted run: the same campaign the CLI drives,
	// cancelled after its first completed chunk, checkpointing to the file
	// the CLI will derive from the base path.
	base := filepath.Join(t.TempDir(), "sec.ckpt")
	cfg, seed := fig8TestConfig()
	ctx, cancel := context.WithCancel(context.Background())
	first := true
	_, err := montecarlo.SimulateLossCampaign(ctx, cfg, seed, montecarlo.CampaignOptions{
		Workers:    1,
		Checkpoint: trialrunner.Checkpoint{Path: base + ".fig8"},
		Progress: progressFunc(func() {
			if first {
				first = false
				cancel()
			}
		}),
		Engine: engine.Event, // the CLI's default; keys must match to resume
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("fabricated interrupt: err = %v", err)
	}
	if _, err := os.Stat(base + ".fig8"); err != nil {
		t.Fatalf("no checkpoint kept after interrupt: %v", err)
	}

	var resumed, resumedErr strings.Builder
	if code := run(context.Background(), args("-checkpoint", base), &resumed, &resumedErr); code != 0 {
		t.Fatalf("resumed run failed (%d): %s", code, resumedErr.String())
	}
	if resumed.String() != plain.String() {
		t.Fatal("resumed stdout is not byte-identical to the uninterrupted run")
	}
	if _, err := os.Stat(base + ".fig8"); !os.IsNotExist(err) {
		t.Fatalf("completed run left its checkpoint behind: %v", err)
	}
}

// progressFunc adapts a closure to montecarlo.ProgressSink for tests.
type progressFunc func()

func (f progressFunc) AddPeriods(int64)     { f() }
func (f progressFunc) AddMitigations(int64) {}

func TestRunFig8InterruptedExitsWithResumeHint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGINT before any chunk completes
	base := filepath.Join(t.TempDir(), "sec.ckpt")
	var out, errOut strings.Builder
	code := run(ctx, []string{"-fig", "8", "-mc-periods", "40000", "-checkpoint", base}, &out, &errOut)
	if code != cli.ExitInterrupted {
		t.Fatalf("exit code %d, want %d; stderr: %s", code, cli.ExitInterrupted, errOut.String())
	}
	if !strings.Contains(errOut.String(), "resume") {
		t.Fatalf("no resume hint on stderr: %q", errOut.String())
	}
}

func TestRunFig8ProgressLines(t *testing.T) {
	var out, errOut strings.Builder
	code := run(context.Background(), []string{"-fig", "8", "-mc-periods", "40000",
		"-progress-every", "1ms"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	// At minimum the final summary line is emitted when reporting is on.
	if !strings.Contains(errOut.String(), "progress campaign=fig8") {
		t.Fatalf("no progress lines on stderr: %q", errOut.String())
	}
	if !strings.Contains(out.String(), "Fig 8") {
		t.Fatal("figure missing from stdout")
	}
}

// TestRunChaosFlagsSmoke drives the full CLI surface of the resilience
// satellite flags: a seeded -chaos schedule with -trial-retries recovers in
// place and still exits 0 with the same table, and a malformed schedule is
// a usage error before any simulation starts.
func TestRunChaosFlagsSmoke(t *testing.T) {
	var want, errOut strings.Builder
	if code := run(context.Background(),
		[]string{"-fig", "8", "-mc-periods", "200000", "-workers", "2"},
		&want, &errOut); code != 0 {
		t.Fatalf("baseline exit code %d, stderr: %s", code, errOut.String())
	}

	var out strings.Builder
	errOut.Reset()
	code := run(context.Background(),
		[]string{"-fig", "8", "-mc-periods", "200000", "-workers", "2",
			"-selfcheck", "-trial-retries", "1",
			"-chaos", "trial.err:nth=1", "-chaos-seed", "7"},
		&out, &errOut)
	if code != 0 {
		t.Fatalf("chaos run exit code %d, stderr: %s", code, errOut.String())
	}
	if out.String() != want.String() {
		t.Fatal("recovered chaos run prints a different table than the undisturbed run")
	}

	errOut.Reset()
	if code := run(context.Background(),
		[]string{"-fig", "8", "-chaos", "::"}, &out, &errOut); code != 2 {
		t.Fatalf("malformed -chaos exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-chaos") {
		t.Fatalf("usage error does not name the flag: %q", errOut.String())
	}
}
