// Command pride-security regenerates the paper's analytic security results:
// Tables I, II, III, IV, V, VI, VIII, IX, XI, XII and Figures 8 and 9.
//
// Usage:
//
//	pride-security -table 3          # one table
//	pride-security -fig 8 -csv       # one figure as CSV series
//	pride-security -all              # everything
//	pride-security -fig 8 -mc-periods 100000000   # paper-scale Monte-Carlo
//	pride-security -fig 8 -workers 1              # serial execution
//	pride-security -fig 8 -checkpoint fig8.ckpt -progress-every 10s
//
// With -checkpoint, an interrupted (SIGINT) Monte-Carlo run saves its
// completed chunks and a rerun of the identical command resumes them,
// producing output bit-identical to an uninterrupted run at any -workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"pride/internal/analytic"
	"pride/internal/cli"
	"pride/internal/dram"
	"pride/internal/montecarlo"
	"pride/internal/report"
	"pride/internal/trialrunner"
)

func main() {
	ctx, cancel := cli.SignalContext()
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI surface (flag
// parsing, error paths, exit codes) is testable. ctx cancellation (SIGINT in
// production) drains the Monte-Carlo campaign gracefully: in-flight chunks
// finish, land in the checkpoint when one is configured, and the process
// exits 130 with a resume hint.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-security", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table     = fs.Int("table", 0, "paper table number to regenerate (1,2,3,4,5,6,8,9,11,12)")
		fig       = fs.Int("fig", 0, "paper figure number to regenerate (8, 9)")
		zoo       = fs.Bool("zoo", false, "emit the tracker-zoo analytic comparison (every scheme incl. MINT, MOAT)")
		all       = fs.Bool("all", false, "regenerate every table and figure")
		csv       = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		mcPeriods = fs.Int("mc-periods", 20_000_000, "Monte-Carlo tREFI periods for Fig 8 (paper: 100M)")
		seed      = fs.Uint64("seed", 1, "Monte-Carlo seed")
		ttf       = fs.Float64("ttf", analytic.DefaultTargetTTFYears, "target time-to-fail per bank, years")
		workers   = fs.Int("workers", trialrunner.DefaultWorkers(),
			"worker goroutines for Monte-Carlo runs (>= 1; 1 = serial; results are worker-count invariant)")
		cf cli.CampaignFlags
		pf cli.ProfileFlags
	)
	cf.Register(fs)
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := trialrunner.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ctx, stopChaos, faults, err := cf.ChaosContext(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer stopChaos()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	p := dram.DDR5()
	emit := func(t *report.Table) {
		if *csv {
			t.CSV(stdout)
		} else {
			t.Render(stdout)
		}
		fmt.Fprintln(stdout)
	}

	ran := false
	want := func(tbl, figure int) bool {
		if *all {
			return true
		}
		if tbl != 0 && tbl == *table {
			return true
		}
		return figure != 0 && figure == *fig
	}

	if want(1, 0) {
		emit(table1(p))
		ran = true
	}
	if want(2, 0) {
		emit(table2())
		ran = true
	}
	if want(0, 8) {
		t, err := fig8(ctx, p, *mcPeriods, *seed, *workers, cf, faults, stderr)
		if err != nil {
			return cli.FailureCode(err, cf.Checkpoint, stderr)
		}
		emit(t)
		ran = true
	}
	if want(3, 0) {
		emit(table3(p, *ttf))
		ran = true
	}
	if want(0, 9) {
		emit(fig9(p, *ttf))
		ran = true
	}
	if want(4, 0) {
		emit(table4(p, *ttf))
		ran = true
	}
	if want(5, 0) {
		emit(table5(p, *ttf))
		ran = true
	}
	if want(6, 0) {
		emit(table6(p, *ttf))
		ran = true
	}
	if want(8, 0) {
		emit(table8(p))
		ran = true
	}
	if want(9, 0) {
		emit(table9(p))
		ran = true
	}
	if want(11, 0) {
		emit(table11())
		ran = true
	}
	if want(12, 0) {
		emit(table12(p, *ttf))
		ran = true
	}
	if *zoo || *all {
		emit(zooTable(p, *ttf))
		ran = true
	}
	if !ran {
		fmt.Fprintln(stderr, "nothing selected: use -table N, -fig N or -all (see -help)")
		return 2
	}
	return 0
}

// zooTable is the cross-design analytic comparison over the full scheme
// enum, including the related-work zoo (MINT, MOAT) beyond the paper's own
// tables. MOAT's row is deterministic (p-hat 1, no tardiness): its TRH* is
// the ATO alert threshold, not an Eq. 8 evaluation.
func zooTable(p dram.Params, ttf float64) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Tracker zoo: analytic thresholds at TTF %.0f years", ttf),
		"Scheme", "Entries", "Window", "p-hat", "Tardiness", "TRH*", "TRH-D*")
	for _, s := range analytic.AllSchemes() {
		r := analytic.EvaluateScheme(s, p, ttf)
		t.AddRow(r.Name, r.Entries, r.Window,
			fmt.Sprintf("%.5f", r.PHat), r.Tardiness,
			fmt.Sprintf("%.0f", r.TRHStar), fmt.Sprintf("%.0f", r.TRHDoubleSided()))
	}
	return t
}

func table1(p dram.Params) *report.Table {
	t := report.NewTable("Table I: DRAM parameters", "Parameter", "Value")
	t.AddRow("tREFW", p.TREFW.String())
	t.AddRow("tREFI", p.TREFI.String())
	t.AddRow("tRFC", p.TRFC.String())
	t.AddRow("tRC", p.TRC.String())
	t.AddRow("ACTs-per-tREFI", p.ACTsPerTREFI())
	t.AddRow("ACTs-per-tREFW", p.ACTsPerTREFW())
	t.AddRow("Banks (tFAW-concurrent)", fmt.Sprintf("%d (%d)", p.Banks, p.TFAWLimit))
	return t
}

func table2() *report.Table {
	t := report.NewTable("Table II: Rowhammer threshold over time",
		"Generation", "TRH-S", "TRH-D", "Source")
	for _, e := range dram.ThresholdHistory() {
		s, d := "-", "-"
		if e.SingleSided > 0 {
			s = fmt.Sprintf("%d", e.SingleSided)
		}
		if e.DoubleSidedLow > 0 {
			if e.DoubleSidedLow == e.DoubleSidedHigh {
				d = fmt.Sprintf("%d", e.DoubleSidedLow)
			} else {
				d = fmt.Sprintf("%d - %d", e.DoubleSidedLow, e.DoubleSidedHigh)
			}
		}
		t.AddRow(e.Generation, s, d, e.Source)
	}
	return t
}

// fig8 runs the Monte-Carlo loss campaign behind Figure 8. It is the one
// long-running section of this command, so it carries the full campaign
// plumbing: cancellation, -checkpoint resume and -progress-every metering.
func fig8(ctx context.Context, p dram.Params, periods int, seed uint64, workers int, cf cli.CampaignFlags, faults trialrunner.TrialFaults, stderr io.Writer) (*report.Table, error) {
	w := p.ACTsPerTREFI()
	mc := montecarlo.LossConfig{Entries: 1, Window: w, InsertionProb: 1 / float64(w), Periods: periods}
	camp, stop := cf.StartCampaign(ctx, "fig8", montecarlo.LossCampaignTrials(mc), workers, stderr)
	defer stop()
	res, err := montecarlo.SimulateLossCampaign(ctx, mc, seed, montecarlo.CampaignOptions{
		Workers:    workers,
		Checkpoint: cf.CheckpointAt("fig8"),
		Progress:   camp,
		Observer:   camp,
		Engine:     cf.Engine.Kind,
		SelfCheck:  cf.SelfCheck,
		Retry:      cf.RetryPolicy(),
		Faults:     faults,
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Fig 8: single-entry loss probability vs position (W=%d, %d MC periods)", w, periods),
		"Position K", "Analytical L_K", "Monte-Carlo L_K")
	for k := 1; k <= w; k++ {
		t.AddRow(k, analytic.LossAtPosition(w, k), res.PerPosition[k-1].LossProb())
	}
	return t, nil
}

func table3(p dram.Params, ttf float64) *report.Table {
	w := p.ACTsPerTREFI()
	ins := 1 / float64(w)
	t := report.NewTable("Table III: loss probability and TRH*(TIF+TRF) vs buffer size",
		"Buffer Size", "Loss Prob (L)", "TRH*(TIF+TRF)")
	for _, n := range []int{1, 2, 4, 8, 16} {
		loss := analytic.LossProbability(n, w, ins)
		t.AddRow(n, loss, analytic.TRHStarTIFTRF(ins, loss, p.TREFI, ttf))
	}
	return t
}

func fig9(p dram.Params, ttf float64) *report.Table {
	w := p.ACTsPerTREFI()
	t := report.NewTable("Fig 9: TRH* vs buffer size (with and without tardiness)",
		"Buffer Size", "TRH*", "TRH* (no tardiness)")
	for n := 1; n <= 16; n++ {
		r := analytic.Analyze("PrIDE", n, w, 1/float64(w), p.TREFI, ttf)
		t.AddRow(n, r.TRHStar, r.TRHStarNoTardiness)
	}
	return t
}

func table4(p dram.Params, ttf float64) *report.Table {
	t := report.NewTable("Table IV: TRH* of PARA and PrIDE", "Scheme", "Type", "TRH*")
	for _, s := range []analytic.Scheme{analytic.SchemePARADRFM, analytic.SchemePARADRFMPlus, analytic.SchemePrIDE} {
		kind := "MC"
		if s == analytic.SchemePrIDE {
			kind = "In-DRAM"
		}
		t.AddRow(s.String(), kind, analytic.EvaluateScheme(s, p, ttf).TRHStar)
	}
	return t
}

func table5(p dram.Params, ttf float64) *report.Table {
	t := report.NewTable("Table V: TRH* of PrIDE and PrIDE+RFM", "Scheme", "Mitigation Rate", "TRH*")
	rows := []struct {
		s    analytic.Scheme
		rate string
	}{
		{analytic.SchemePrIDEHalfRate, "0.5x (one per two tREFI)"},
		{analytic.SchemePrIDE, "1x (one per tREFI)"},
		{analytic.SchemePrIDERFM40, "2x (approx two per tREFI)"},
		{analytic.SchemePrIDERFM16, "5x (approx five per tREFI)"},
	}
	for _, r := range rows {
		t.AddRow(r.s.String(), r.rate, analytic.EvaluateScheme(r.s, p, ttf).TRHStar)
	}
	return t
}

func table6(p dram.Params, ttf float64) *report.Table {
	t := report.NewTable("Table VI: TRH-S* and TRH-D*", "Scheme", "TRH-S*", "TRH-D*")
	for _, s := range []analytic.Scheme{analytic.SchemePARADRFM, analytic.SchemePrIDE,
		analytic.SchemePrIDERFM40, analytic.SchemePrIDERFM16} {
		r := analytic.EvaluateScheme(s, p, ttf)
		t.AddRow(s.String(), r.TRHStar, r.TRHDoubleSided())
	}
	return t
}

func table8(p dram.Params) *report.Table {
	t := report.NewTable("Table VIII: Target-TTF sensitivity",
		"Target-TTF (Bank)", "MTTF (System)", "TRH-S*", "TRH-D*")
	for _, row := range analytic.TTFSensitivity(p, []float64{100, 1_000, 10_000, 100_000, 1_000_000}) {
		t.AddRow(
			report.FormatTTFYears(row.TargetTTFBankYears),
			report.FormatTTFYears(row.MTTFSystemYears),
			row.TRHSingle, row.TRHDouble)
	}
	return t
}

func table9(p dram.Params) *report.Table {
	schemes := []analytic.Scheme{analytic.SchemePrIDE, analytic.SchemePrIDERFM40, analytic.SchemePrIDERFM16}
	thresholds := []int{4800, 2000, 1800, 1600, 1400, 1200, 1000, 800, 600, 400, 200}
	t := report.NewTable("Table IX: average time to system failure vs device TRH-D",
		"Device TRH-D", "PrIDE", "PrIDE+RFM40", "PrIDE+RFM16")
	for _, row := range analytic.DeviceTTFTable(p, thresholds, schemes) {
		t.AddRow(row.DeviceTRHD,
			report.FormatTTFYears(row.TTFYears["PrIDE"]),
			report.FormatTTFYears(row.TTFYears["PrIDE+RFM40"]),
			report.FormatTTFYears(row.TTFYears["PrIDE+RFM16"]))
	}
	return t
}

func table11() *report.Table {
	t := report.NewTable("Table XI: per-bank SRAM overhead of trackers",
		"Name", "Device TRH-D=4K", "Device TRH-D=400")
	for _, row := range analytic.SRAMOverheadTable([]int{4000, 400}, 84) {
		t.AddRow(row.Name, formatBytes(row.Bytes[4000]), formatBytes(row.Bytes[400]))
	}
	return t
}

func table12(p dram.Params, ttf float64) *report.Table {
	t := report.NewTable("Table XII: our model vs Saroiu-Wolman",
		"Entries", "L", "p-hat", "Tardiness", "TRH* (our model)", "TRH* (S-W reconstruction)")
	for _, r := range analytic.SaroiuWolmanTable(p, []int{1, 2, 4, 8, 16}, ttf) {
		name := fmt.Sprintf("%d", r.Entries)
		if r.Entries == 0 {
			name = "Ideal"
		}
		t.AddRow(name, r.Loss, r.PHat, r.Tardiness, r.OurTRH, r.SWTRH)
	}
	return t
}

func formatBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f bytes", b)
	}
}
