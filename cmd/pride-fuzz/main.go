// Command pride-fuzz runs the guided adversarial search — an island-model
// population search over Blacksmith-style pattern parameters — against a
// chosen tracker, looking for the pattern that maximizes unmitigated
// disturbance. Against PrIDE the search plateaus under the analytic TRH*;
// against counter-driven trackers it climbs — the paper's Section VII-F
// claim, demonstrated adversarially.
//
// Usage:
//
//	pride-fuzz                                   # attack PrIDE
//	pride-fuzz -scheme PRoHIT                    # attack a baseline
//	pride-fuzz -islands 8 -generations 40 -save out.trace
//	pride-fuzz -checkpoint fuzz.ckpt -progress-every 10s
//	pride-fuzz -scheme all -acts 650000 -corpus corpus   # regenerate corpus/
//
// With -checkpoint, an interrupted (SIGINT) run exits 130 after saving every
// completed migration epoch, and a rerun of the identical command resumes
// them, producing output bit-identical to an uninterrupted run at any
// -workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"pride/internal/analytic"
	"pride/internal/cli"
	"pride/internal/corpus"
	"pride/internal/dram"
	"pride/internal/fuzz"
	"pride/internal/patterns"
	"pride/internal/report"
	"pride/internal/sim"
	"pride/internal/trialrunner"
)

func main() {
	ctx, cancel := cli.SignalContext()
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI surface (flag
// parsing, error paths, exit codes) is testable. ctx cancellation (SIGINT in
// production) drains the search gracefully: the in-flight migration epoch
// finishes, lands in the checkpoint when one is configured, and the process
// exits 130 with a resume hint.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schemeName = fs.String("scheme", "PrIDE",
			`target tracker (PrIDE, PrIDE+RFM40, PrIDE+RFM16, PRoHIT, DSAC, PARA-MC, PARFM, TRR, MINT, MOAT), or "all"`)
		generations = fs.Int("generations", 20, "mutate-evaluate generations per island")
		islands     = fs.Int("islands", 4, "independent populations evolving in parallel")
		population  = fs.Int("population", 6, "genomes per island")
		migrate     = fs.Int("migrate-every", 5,
			"ring-migrate each island's elite every this many generations (also the checkpoint granularity)")
		acts     = fs.Int("acts", 150_000, "activations per evaluation (a full tREFW is ~650K)")
		maxPairs = fs.Int("maxpairs", 12, "maximum aggressor pairs per genome")
		seed     = fs.Uint64("seed", 1, "search seed")
		save     = fs.String("save", "", "write the worst pattern found to this trace file")
		corpusTo = fs.String("corpus", "",
			"write the worst pattern found to this corpus directory as a trace + JSON sidecar entry")
		workers = fs.Int("workers", trialrunner.DefaultWorkers(),
			"worker goroutines for island evaluation (>= 1; 1 = serial; results are worker-count invariant)")
		cf cli.CampaignFlags
		pf cli.ProfileFlags
	)
	cf.Register(fs)
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := trialrunner.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var schemes []sim.Scheme
	if *schemeName == "all" {
		schemes = sim.SearchSchemes()
	} else {
		s, err := sim.SchemeByName(*schemeName)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		schemes = []sim.Scheme{s}
	}
	ctx, stopChaos, faults, err := cf.ChaosContext(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer stopChaos()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	params := dram.DDR5()
	params.RowsPerBank = 8192
	params.RowBits = 13
	cfg := fuzz.Config{
		Attack:       sim.AttackConfig{Params: params, ACTs: *acts, SelfCheck: cf.SelfCheck},
		Generations:  *generations,
		Islands:      *islands,
		Population:   *population,
		MigrateEvery: *migrate,
		MaxPairs:     *maxPairs,
		Engine:       cf.Engine.Kind,
	}

	for _, scheme := range schemes {
		res, err := search(ctx, cfg, scheme, *seed, *workers, cf, faults, stdout, stderr)
		if err != nil {
			return cli.FailureCode(err, cf.Checkpoint, stderr)
		}
		if *save != "" {
			if err := savePattern(*save, res.BestPattern); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stdout, "Worst pattern saved to %s (replay with pride-attack -trace %s)\n", *save, *save)
		}
		if *corpusTo != "" {
			name, err := saveCorpusEntry(*corpusTo, cfg, scheme, *seed, res)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stdout, "Corpus entry %s/%s.{trace,json} committed at expected disturbance %d\n",
				*corpusTo, name, res.BestDisturbance)
		}
	}
	return 0
}

// search runs one island-model campaign and renders its report.
func search(ctx context.Context, cfg fuzz.Config, scheme sim.Scheme, seed uint64, workers int, cf cli.CampaignFlags, faults trialrunner.TrialFaults, stdout, stderr io.Writer) (fuzz.Result, error) {
	section := "fuzz-" + scheme.Name
	camp, stop := cf.StartCampaign(ctx, section, cfg.Epochs(), workers, stderr)
	res, err := fuzz.SearchCampaign(ctx, cfg, scheme, seed, fuzz.SearchOptions{
		Workers:    workers,
		Checkpoint: cf.CheckpointAt(section),
		Progress:   camp,
		Observer:   camp,
		Retry:      cf.RetryPolicy(),
		Faults:     faults,
	})
	stop()
	if err != nil {
		return fuzz.Result{}, err
	}

	t := report.NewTable(
		fmt.Sprintf("Island search vs %s (%d islands x %d genomes x %d generations, migrate every %d; %d evaluations)",
			scheme.Name, cfg.Islands, cfg.Population, cfg.Generations, cfg.MigrateEvery, res.Evaluations),
		"Generation", "Best Disturbance So Far")
	for i, v := range res.History {
		t.AddRow(i+1, v)
	}
	t.Render(stdout)
	fmt.Fprintf(stdout, "\nWorst pattern found (island %d): %s -> %d unmitigated activations\n",
		res.BestIsland, res.BestPattern.Name, res.BestDisturbance)

	bound := analytic.EvaluateScheme(analytic.SchemePrIDE, cfg.Attack.Params, analytic.DefaultTargetTTFYears)
	fmt.Fprintf(stdout, "Analytic PrIDE TRH* is %.0f: %s %s it.\n",
		bound.TRHStar, scheme.Name, verdict(float64(res.BestDisturbance) < bound.TRHStar))
	return res, nil
}

func savePattern(path string, p *patterns.Pattern) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := patterns.WriteTrace(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// corpusClasses fixes each scheme's committed security claim. The climbing
// set is the counter-based trackers this reimplementation drives past the
// analytic bound at full-tREFW budgets; the rest are committed as bounded
// (see the notes and EXPERIMENTS.md for the DSAC deviation).
var corpusClasses = map[string]struct {
	class corpus.Class
	note  string
}{
	"PrIDE":       {corpus.ClassBounded, "pattern-oblivious by design; the search plateaus at the analytic TRH*"},
	"PrIDE+RFM40": {corpus.ClassBounded, "pattern-oblivious by design, with RFM headroom"},
	"PrIDE+RFM16": {corpus.ClassBounded, "pattern-oblivious by design, with RFM headroom"},
	"PARA-MC":     {corpus.ClassBounded, "stateless sampling is pattern-oblivious; bounded like PrIDE"},
	"PARFM":       {corpus.ClassBounded, "empirically bounded at this budget in this reimplementation"},
	"DSAC":        {corpus.ClassBounded, "documented deviation: this DSAC reimplementation resists the search (EXPERIMENTS.md, Fig 15 notes); the silicon break (>9K) is not reproduced"},
	"PRoHIT":      {corpus.ClassClimbing, "table thrashing lets the search drive disturbance past the analytic bound"},
	"TRR":         {corpus.ClassClimbing, "Blacksmith-style many-sided patterns defeat the sampler, as on real DDR4 TRR"},
	"MINT":        {corpus.ClassBounded, "the interval schedule commits insertions before the pattern runs; pattern-oblivious like PrIDE"},
	"MOAT":        {corpus.ClassBounded, "deterministic ATO alert caps disturbance at 128 regardless of pattern shape"},
}

// saveCorpusEntry persists the search's best attack as a committed corpus
// entry: the trace plus a sidecar binding it to the scheme, the exact
// evaluation seed, and the measured disturbance.
func saveCorpusEntry(dir string, cfg fuzz.Config, scheme sim.Scheme, campaignSeed uint64, res fuzz.Result) (string, error) {
	cls, ok := corpusClasses[scheme.Name]
	if !ok {
		return "", fmt.Errorf("no corpus class defined for scheme %q", scheme.Name)
	}
	side := corpus.Sidecar{
		Scheme:              scheme.Name,
		Class:               cls.class,
		Seed:                res.BestSeed,
		ACTs:                cfg.Attack.ACTs,
		RowsPerBank:         cfg.Attack.Params.RowsPerBank,
		RowBits:             cfg.Attack.Params.RowBits,
		Engine:              cfg.Engine.String(),
		Islands:             cfg.Islands,
		Population:          cfg.Population,
		Generations:         cfg.Generations,
		MigrateEvery:        cfg.MigrateEvery,
		MaxPairs:            cfg.MaxPairs,
		CampaignSeed:        campaignSeed,
		ExpectedDisturbance: res.BestDisturbance,
		Note:                cls.note,
	}
	return corpus.WriteEntry(dir, side, res.BestPattern)
}

func verdict(held bool) string {
	if held {
		return "stayed under"
	}
	return "EXCEEDED"
}
