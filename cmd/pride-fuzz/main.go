// Command pride-fuzz runs guided adversarial search (Blacksmith-style
// parameter fuzzing with hill climbing) against a chosen tracker, looking
// for the pattern that maximizes unmitigated disturbance. Against PrIDE the
// search plateaus under the analytic TRH*; against counter-driven trackers
// it climbs — the paper's Section VII-F claim, demonstrated adversarially.
//
// Usage:
//
//	pride-fuzz                         # attack PrIDE
//	pride-fuzz -scheme PRoHIT          # attack a baseline
//	pride-fuzz -rounds 60 -save out.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/fuzz"
	"pride/internal/patterns"
	"pride/internal/report"
	"pride/internal/sim"
)

func main() {
	var (
		schemeName = flag.String("scheme", "PrIDE", "target tracker (PrIDE, PrIDE+RFM40, PrIDE+RFM16, PRoHIT, DSAC, PARA-MC, PARFM)")
		rounds     = flag.Int("rounds", 20, "hill-climbing rounds")
		population = flag.Int("population", 6, "genomes kept per round")
		acts       = flag.Int("acts", 150_000, "activations per evaluation")
		seed       = flag.Uint64("seed", 1, "search seed")
		save       = flag.String("save", "", "write the worst pattern found to this trace file")
	)
	flag.Parse()

	var scheme sim.Scheme
	found := false
	for _, s := range sim.Fig15Schemes() {
		if s.Name == *schemeName {
			scheme, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	params := dram.DDR5()
	params.RowsPerBank = 8192
	params.RowBits = 13
	cfg := fuzz.Config{
		Attack:     sim.AttackConfig{Params: params, ACTs: *acts},
		Rounds:     *rounds,
		Population: *population,
		MaxPairs:   12,
	}
	res := fuzz.Search(cfg, scheme, *seed)

	t := report.NewTable(
		fmt.Sprintf("Guided search vs %s (%d rounds x %d genomes, %d evaluations)",
			scheme.Name, *rounds, *population, res.Evaluations),
		"Round", "Best Disturbance So Far")
	for i, v := range res.History {
		t.AddRow(i+1, v)
	}
	t.Render(os.Stdout)
	fmt.Printf("\nWorst pattern found: %s -> %d unmitigated activations\n",
		res.BestPattern.Name, res.BestDisturbance)

	if scheme.Name == "PrIDE" {
		bound := analytic.EvaluateScheme(analytic.SchemePrIDE, params, analytic.DefaultTargetTTFYears)
		fmt.Printf("PrIDE's analytic TRH* is %.0f: the search %s the guarantee.\n",
			bound.TRHStar, verdict(float64(res.BestDisturbance) < bound.TRHStar))
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := patterns.WriteTrace(f, res.BestPattern); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Worst pattern saved to %s (replay with pride-attack -trace %s)\n", *save, *save)
	}
}

func verdict(held bool) string {
	if held {
		return "stayed under"
	}
	return "EXCEEDED"
}
