package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pride/internal/cli"
	"pride/internal/corpus"
	"pride/internal/sim"
)

// quickArgs keeps CLI-level searches small enough for a unit test.
func quickArgs(extra ...string) []string {
	return append([]string{
		"-generations", "4", "-islands", "2", "-population", "3",
		"-migrate-every", "2", "-acts", "20000", "-workers", "2",
	}, extra...)
}

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), quickArgs(), &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Island search vs PrIDE", "Worst pattern found", "TRH*"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWorkerInvariantOutput(t *testing.T) {
	var want, errOut strings.Builder
	if code := run(context.Background(), quickArgs("-workers", "1"), &want, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, workers := range []string{"2", "5"} {
		var out strings.Builder
		errOut.Reset()
		if code := run(context.Background(), quickArgs("-workers", workers), &out, &errOut); code != 0 {
			t.Fatalf("-workers %s: exit code %d, stderr: %s", workers, code, errOut.String())
		}
		if out.String() != want.String() {
			t.Fatalf("-workers %s output differs from -workers 1", workers)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"unknown scheme": {"-scheme", "NoSuchTracker"},
		"bad workers":    quickArgs("-workers", "0"),
		"bad engine":     quickArgs("-engine", "quantum"),
		"bad chaos":      quickArgs("-chaos", "::"),
	}
	for name, args := range cases {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr: %s)", name, code, errOut.String())
		}
		if errOut.Len() == 0 {
			t.Errorf("%s: no diagnostic on stderr", name)
		}
	}
}

func TestRunInterruptedExits130WithResumeHint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGINT before any epoch completes
	base := filepath.Join(t.TempDir(), "fuzz.ckpt")
	var out, errOut strings.Builder
	code := run(ctx, quickArgs("-checkpoint", base), &out, &errOut)
	if code != cli.ExitInterrupted {
		t.Fatalf("exit code %d, want %d; stderr: %s", code, cli.ExitInterrupted, errOut.String())
	}
	if !strings.Contains(errOut.String(), "resume") {
		t.Fatalf("no resume hint on stderr: %q", errOut.String())
	}
}

func TestRunInterruptedWithoutCheckpointStillExits130(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	if code := run(ctx, quickArgs(), &out, &errOut); code != cli.ExitInterrupted {
		t.Fatalf("exit code %d, want %d", code, cli.ExitInterrupted)
	}
	if !strings.Contains(errOut.String(), "-checkpoint") {
		t.Fatalf("no checkpoint suggestion on stderr: %q", errOut.String())
	}
}

func TestRunResumesFromCheckpointBitIdentical(t *testing.T) {
	var want, errOut strings.Builder
	if code := run(context.Background(), quickArgs("-seed", "5"), &want, &errOut); code != 0 {
		t.Fatalf("uninterrupted run failed (%d): %s", code, errOut.String())
	}

	// Interrupt a checkpointed run partway: cancel the context from a
	// progress hook is not reachable from the CLI, so emulate the operator
	// workflow — run with an immediately-cancelled context (nothing done),
	// then resume; and separately trust the fuzz package's mid-run tests.
	base := filepath.Join(t.TempDir(), "fuzz.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out1 strings.Builder
	errOut.Reset()
	if code := run(ctx, quickArgs("-seed", "5", "-checkpoint", base), &out1, &errOut); code != cli.ExitInterrupted {
		t.Fatalf("interrupted run: exit code %d, want %d", code, cli.ExitInterrupted)
	}

	var resumed strings.Builder
	errOut.Reset()
	if code := run(context.Background(), quickArgs("-seed", "5", "-checkpoint", base), &resumed, &errOut); code != 0 {
		t.Fatalf("resumed run failed (%d): %s", code, errOut.String())
	}
	if resumed.String() != want.String() {
		t.Fatalf("resumed stdout differs from uninterrupted run:\n%s\nvs\n%s", resumed.String(), want.String())
	}
}

func TestRunSavesTraceAndCorpusEntry(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.trace")
	corpusDir := filepath.Join(dir, "corpus")
	var out, errOut strings.Builder
	code := run(context.Background(), quickArgs("-save", trace, "-corpus", corpusDir), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	entries, err := corpus.Load(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "pride" {
		t.Fatalf("corpus entries = %+v, want one pride entry", entries)
	}
	// The committed entry must verify immediately: the sidecar's expected
	// disturbance is the search's measurement, replayed under the same seed.
	if _, err := entries[0].Verify(); err != nil {
		t.Fatalf("freshly-generated corpus entry fails verification: %v", err)
	}
	if !strings.Contains(out.String(), "Corpus entry") {
		t.Fatalf("no corpus confirmation in output:\n%s", out.String())
	}
}

func TestCorpusClassesCoverSearchSchemes(t *testing.T) {
	known := map[string]bool{}
	for _, s := range sim.SearchSchemes() {
		known[s.Name] = true
		if _, ok := corpusClasses[s.Name]; !ok {
			t.Errorf("scheme %q has no corpus class; -scheme all -corpus would fail", s.Name)
		}
	}
	for name := range corpusClasses {
		if !known[name] {
			t.Errorf("corpusClasses names unknown scheme %q", name)
		}
	}
}
