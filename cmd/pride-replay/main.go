// Command pride-replay drives a server-scale topology — N channels × ranks ×
// banks, each bank owning its own controller, tracker and derived RNG stream
// — from an ACT-granularity trace. Records are demuxed by (channel, rank,
// bank) into per-shard queues and replayed by a worker pool; the result is
// bit-identical at any -workers count, across checkpoint resume, and between
// a generator-driven run and a replay of the trace it emitted.
//
// The trace comes from a file (-trace; the compact binary format or the
// human-readable text form, sniffed automatically) or from a synthetic
// workload generator (-workload, one of the SPEC2017-calibrated specs).
// -emit writes the stream as a binary trace and replays the emitted file, so
// it doubles as a text-to-binary converter and a generator snapshot tool.
//
// Usage:
//
//	pride-replay -trace server.trace
//	pride-replay -workload lbm -acts 2000000 -mapping "col=6 bank=2 row=12 rank=1 chan=1 xor=1"
//	pride-replay -workload lbm -acts 100000 -emit snapshot.trace
//	pride-replay -trace server.trace -scheme MINT -rfm 16,32 -scramble-seed 99
//	pride-replay -trace server.trace -checkpoint replay.ckpt -progress-every 10s
//
// Replay is inherently exact (one trace record per demand ACT), so there is
// no -engine flag. Throughput metrics (records/s, ACTs/s, MB/s) land on
// stderr; the per-channel result table on stdout is deterministic.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pride/internal/addrmap"
	"pride/internal/cli"
	"pride/internal/dram"
	"pride/internal/report"
	"pride/internal/sim"
	"pride/internal/system"
	"pride/internal/trace"
	"pride/internal/trialrunner"
	"pride/internal/workload"
)

func main() {
	ctx, cancel := cli.SignalContext()
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI surface (flag
// parsing, error paths, exit codes) is testable. ctx cancellation (SIGINT in
// production) drains the shard pool gracefully: in-flight shards finish, land
// in the checkpoint when one is configured, and the process exits 130 with a
// resume hint.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath = fs.String("trace", "", "trace file to replay (binary or text form, sniffed automatically)")
		wlName    = fs.String("workload", "", "synthetic workload generator to replay instead of a trace file (a SPEC2017 spec name, e.g. \"lbm\")")
		acts      = fs.Int("acts", 1_000_000, "record count generated in -workload mode")
		wlSeed    = fs.Uint64("workload-seed", 7, "generator seed in -workload mode")
		mapStr    = fs.String("mapping", addrmap.DefaultDDR5().String(),
			"address mapping in -workload mode (a trace file carries its own)")
		emitPath = fs.String("emit", "", "write the stream as a binary trace here, then replay the emitted file")
		schemeN  = fs.String("scheme", "PrIDE", "mitigation scheme every bank runs (see internal/sim.SearchSchemes)")
		trh      = fs.Int("trh", 1000, "device double-sided Rowhammer threshold")
		rfm      = fs.String("rfm", "", "per-channel RFM budgets, comma-separated: one value for all channels or one per channel (\"\" = scheme default)")
		scramble = fs.Uint64("scramble-seed", 0, "per-bank row-scrambler seed; 0 disables (trace rows are then internal rows)")
		seed     = fs.Uint64("seed", 1, "base seed for the per-shard tracker streams")
		csv      = fs.Bool("csv", false, "emit the per-channel table as CSV")
		workers  = fs.Int("workers", trialrunner.DefaultWorkers(),
			"worker goroutines for the shard pool (>= 1; 1 = serial; results are worker-count invariant)")
		cf cli.CampaignFlags
		pf cli.ProfileFlags
	)
	cf.RegisterNoEngine(fs)
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch {
	case *tracePath == "" && *wlName == "":
		fmt.Fprintln(stderr, "one of -trace or -workload is required")
		return 2
	case *tracePath != "" && *wlName != "":
		fmt.Fprintln(stderr, "-trace and -workload are mutually exclusive")
		return 2
	case *tracePath != "" && set["mapping"]:
		fmt.Fprintln(stderr, "-mapping applies only to -workload mode: a trace file carries its own mapping")
		return 2
	case *tracePath != "" && (set["acts"] || set["workload-seed"]):
		fmt.Fprintln(stderr, "-acts and -workload-seed apply only to -workload mode")
		return 2
	}
	if err := trialrunner.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	scheme, err := sim.SchemeByName(*schemeN)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	budgets, err := parseBudgets(*rfm)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Build the record source: a streamed file or a workload generator.
	var src trace.Source
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		src, err = openTrace(f)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", *tracePath, err)
			return 2
		}
	} else {
		spec, ok := specByName(*wlName)
		if !ok {
			fmt.Fprintf(stderr, "unknown workload %q (have %s)\n", *wlName, specNames())
			return 2
		}
		if *acts < 1 {
			fmt.Fprintln(stderr, "-acts must be >= 1")
			return 2
		}
		m, err := addrmap.ParseMapping(*mapStr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		src = workload.NewAddrSource(spec, m, *acts, *wlSeed)
	}

	// -emit snapshots the stream to a binary trace and replays the emitted
	// file, so what lands on disk is exactly what the replay consumed.
	if *emitPath != "" {
		if err := emitTrace(src, *emitPath); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		f, err := os.Open(*emitPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		src, err = trace.NewReader(bufio.NewReader(f))
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", *emitPath, err)
			return 2
		}
	}

	topo, err := system.NewTopology(system.TopologyConfig{
		Params:       dram.DDR5(),
		Mapping:      src.Mapping(),
		Scheme:       scheme,
		TRH:          *trh,
		Seed:         *seed,
		RFMBudgets:   budgets,
		ScrambleSeed: *scramble,
		SelfCheck:    cf.SelfCheck,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ctx, stopChaos, faults, err := cf.ChaosContext(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer stopChaos()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	camp, stop := cf.StartCampaign(ctx, "replay", topo.Shards(), *workers, stderr)
	res, err := topo.ReplayCampaign(ctx, src, system.ReplayOptions{
		Workers:    *workers,
		Checkpoint: cf.CheckpointAt("replay"),
		Progress:   camp,
		Observer:   camp,
		Retry:      cf.RetryPolicy(),
		Faults:     faults,
	})
	snap := camp.Snapshot()
	stop()
	if err != nil {
		return cli.FailureCode(err, cf.Checkpoint, stderr)
	}

	// The stdout report is deterministic (worker-count invariant): the
	// per-channel aggregate table plus the stream fingerprint. Wall-clock
	// throughput goes to stderr below.
	t := report.NewTable(
		fmt.Sprintf("Server-scale trace replay (%s, %s, TRH %d)",
			scheme.Name, src.Mapping().String(), *trh),
		"Channel", "ACTs", "REFs", "RFMs", "Mitigations", "Victim Refreshes", "Flips", "Max Disturbance")
	for _, c := range res.PerChannel() {
		t.AddRow(c.Channel, c.ACTs, c.REFs, c.RFMs, c.Mitigations, c.VictimRefreshes, c.Flips, c.MaxDisturbance)
	}
	if *csv {
		t.CSV(stdout)
	} else {
		t.Render(stdout)
	}
	fmt.Fprintf(stdout, "\nreplayed %d records crc=%08x shards=%d flips=%d\n",
		res.Records, res.CRC32, len(res.Shards), res.TotalFlips())

	actsPerSec := 0.0
	if snap.ElapsedSeconds > 0 {
		actsPerSec = float64(snap.Activations) / snap.ElapsedSeconds
	}
	fmt.Fprintf(stderr, "throughput records=%d records_per_sec=%.3g acts_per_sec=%.3g mb_per_sec=%.2f elapsed=%.2fs\n",
		snap.Records, snap.RecordsPerSec, actsPerSec, snap.MBPerSec, snap.ElapsedSeconds)
	return 0
}

// openTrace sniffs whether f holds the binary or the text trace form and
// returns the matching source. Binary streams decode incrementally; the text
// form is small by construction and is loaded whole.
func openTrace(f *os.File) (trace.Source, error) {
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(len(trace.Magic))
	if err == nil && string(head) == trace.Magic {
		return trace.NewReader(br)
	}
	m, addrs, err := trace.ReadText(br)
	if err != nil {
		return nil, err
	}
	return trace.NewSliceSource(m, addrs), nil
}

// emitTrace drains src and writes it as a binary trace at path.
func emitTrace(src trace.Source, path string) error {
	addrs, err := trace.Drain(src, nil)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteAll(f, src.Mapping(), addrs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseBudgets parses the -rfm comma-separated per-channel budget list.
func parseBudgets(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-rfm: budget %q must be a non-negative integer", p)
		}
		out[i] = v
	}
	return out, nil
}

// specByName resolves a workload spec by its exact name.
func specByName(name string) (workload.Spec, bool) {
	for _, s := range workload.All() {
		if s.Name == name {
			return s, true
		}
	}
	return workload.Spec{}, false
}

// specNames lists the available workload names for the error message.
func specNames() string {
	var names []string
	for _, s := range workload.All() {
		names = append(names, s.Name)
	}
	return strings.Join(names, ", ")
}
