package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pride/internal/cli"
	"pride/internal/trace"
)

// smokeMapping and smokeArgs mirror how testdata/smoke.trace was generated:
//
//	pride-replay -workload lbm -acts 8192 -mapping "col=4 bank=2 row=10 rank=1 chan=1 xor=1" \
//	    -trh 300 -emit cmd/pride-replay/testdata/smoke.trace
const (
	smokeTrace   = "testdata/smoke.trace"
	smokeMapping = "col=4 bank=2 row=10 rank=1 chan=1 xor=1"
)

func smokeGenArgs(extra ...string) []string {
	base := []string{"-workload", "lbm", "-acts", "8192", "-workload-seed", "7",
		"-mapping", smokeMapping, "-trh", "300"}
	return append(base, extra...)
}

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errOut strings.Builder
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	return out.String()
}

func TestRunTraceWorkerInvariance(t *testing.T) {
	// The whole stdout report must be byte-identical across -workers values.
	want := runOK(t, "-trace", smokeTrace, "-trh", "300", "-workers", "1")
	if !strings.Contains(want, "replayed 8192 records") {
		t.Fatalf("report missing the record count:\n%s", want)
	}
	for _, workers := range []string{"2", "4", "8"} {
		if got := runOK(t, "-trace", smokeTrace, "-trh", "300", "-workers", workers); got != want {
			t.Fatalf("-workers %s output differs from -workers 1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

func TestRunGeneratorMatchesCommittedTrace(t *testing.T) {
	// A generator-driven replay and a replay of the committed trace that
	// generator emitted produce byte-identical reports (same records, same
	// CRC, same flips), and re-emitting regenerates the committed file
	// byte-for-byte — the guard that testdata/smoke.trace stays reproducible.
	emitted := filepath.Join(t.TempDir(), "smoke.trace")
	fromGen := runOK(t, smokeGenArgs("-workers", "2", "-emit", emitted)...)
	fromFile := runOK(t, "-trace", smokeTrace, "-trh", "300", "-workers", "2")
	if fromGen != fromFile {
		t.Fatalf("generator-driven report differs from trace replay:\n%s\nvs\n%s", fromGen, fromFile)
	}
	got, err := os.ReadFile(emitted)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(smokeTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("emitted trace (%d bytes) differs from committed %s (%d bytes); regenerate it with the command in the comment above", len(got), smokeTrace, len(want))
	}
}

func TestRunTextTraceConversion(t *testing.T) {
	// The text form of the smoke trace replays identically, and -emit
	// converts it back to the identical binary file.
	f, err := os.Open(smokeTrace)
	if err != nil {
		t.Fatal(err)
	}
	m, addrs, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	textPath := filepath.Join(dir, "smoke.txt")
	tf, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteText(tf, m, addrs); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(dir, "converted.trace")
	fromText := runOK(t, "-trace", textPath, "-trh", "300", "-emit", binPath)
	fromBin := runOK(t, "-trace", smokeTrace, "-trh", "300")
	if fromText != fromBin {
		t.Fatalf("text replay differs from binary replay:\n%s\nvs\n%s", fromText, fromBin)
	}
	got, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(smokeTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("text-to-binary conversion is not byte-identical to the original")
	}
}

func TestRunPerChannelRFMBudgets(t *testing.T) {
	out := runOK(t, "-trace", smokeTrace, "-trh", "300", "-rfm", "0,48", "-csv")
	var rfms []string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		cells := strings.Split(line, ",")
		if len(cells) < 4 || (cells[0] != "0" && cells[0] != "1") {
			continue
		}
		rfms = append(rfms, cells[3])
	}
	if len(rfms) != 2 {
		t.Fatalf("expected 2 channel rows, got %d:\n%s", len(rfms), out)
	}
	if rfms[0] != "0" {
		t.Fatalf("channel 0 has budget 0 but issued %s RFMs:\n%s", rfms[0], out)
	}
	if rfms[1] == "0" {
		t.Fatalf("channel 1 has budget 48 but issued no RFMs:\n%s", out)
	}
}

func TestRunSchemeMINT(t *testing.T) {
	out := runOK(t, "-trace", smokeTrace, "-trh", "300", "-scheme", "MINT")
	if !strings.Contains(out, "MINT") {
		t.Fatalf("report missing the MINT scheme name:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"no source":              {"-trh", "300"},
		"both sources":           {"-trace", smokeTrace, "-workload", "lbm"},
		"mapping with trace":     {"-trace", smokeTrace, "-mapping", smokeMapping},
		"acts with trace":        {"-trace", smokeTrace, "-acts", "100"},
		"seed with trace":        {"-trace", smokeTrace, "-workload-seed", "3"},
		"unknown workload":       smokeGenArgs("-workload", "nosuchthing"),
		"zero acts":              smokeGenArgs("-acts", "0"),
		"bad mapping":            {"-workload", "lbm", "-mapping", "col=4"},
		"unknown scheme":         {"-trace", smokeTrace, "-scheme", "bogus"},
		"bad rfm value":          {"-trace", smokeTrace, "-rfm", "x"},
		"negative rfm":           {"-trace", smokeTrace, "-rfm", "-1"},
		"rfm count mismatch":     {"-trace", smokeTrace, "-rfm", "1,2,3"},
		"bad trh":                {"-trace", smokeTrace, "-trh", "1"},
		"zero workers":           {"-trace", smokeTrace, "-workers", "0"},
		"unknown flag":           {"-definitely-not-a-flag"},
		"engine flag is removed": {"-trace", smokeTrace, "-engine", "exact"},
		"missing trace file":     {"-trace", "testdata/nope.trace"},
		"bad chaos spec":         {"-trace", smokeTrace, "-chaos", "nonsense"},
	}
	for name, args := range cases {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr: %s)", name, code, errOut.String())
		}
	}
}

func TestRunRejectsCorruptTrace(t *testing.T) {
	// A file that starts with the magic but lies about its record count is
	// rejected with the decoder's torn-tail diagnostic, not replayed short.
	data, err := os.ReadFile(smokeTrace)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.trace")
	if err := os.WriteFile(torn, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-trace", torn, "-trh", "300"}, &out, &errOut); code == 0 {
		t.Fatalf("torn trace replayed successfully:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "torn tail") {
		t.Fatalf("no torn-tail diagnostic on stderr: %q", errOut.String())
	}
}

func TestRunThroughputOnStderr(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-trace", smokeTrace, "-trh", "300"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"throughput", "records=8192", "records_per_sec=", "acts_per_sec=", "mb_per_sec="} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("stderr missing %q: %q", want, errOut.String())
		}
	}
	if strings.Contains(out.String(), "throughput") {
		t.Fatal("wall-clock throughput leaked onto the deterministic stdout report")
	}
}

func TestRunInterruptedExitsWithResumeHint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGINT before any shard completes
	base := filepath.Join(t.TempDir(), "replay.ckpt")
	var out, errOut strings.Builder
	code := run(ctx, []string{"-trace", smokeTrace, "-trh", "300", "-checkpoint", base}, &out, &errOut)
	if code != cli.ExitInterrupted {
		t.Fatalf("exit code %d, want %d; stderr: %s", code, cli.ExitInterrupted, errOut.String())
	}
	if !strings.Contains(errOut.String(), "resume") {
		t.Fatalf("no resume hint on stderr: %q", errOut.String())
	}
}

func TestRunCheckpointedMatchesPlain(t *testing.T) {
	plain := runOK(t, "-trace", smokeTrace, "-trh", "300", "-workers", "2")
	base := filepath.Join(t.TempDir(), "replay.ckpt")
	ckpt := runOK(t, "-trace", smokeTrace, "-trh", "300", "-workers", "3", "-checkpoint", base)
	if ckpt != plain {
		t.Fatal("checkpointed stdout differs from plain run")
	}
	// Resuming the finished checkpoint restores every shard and reproduces
	// the identical report.
	resumed := runOK(t, "-trace", smokeTrace, "-trh", "300", "-workers", "1", "-checkpoint", base)
	if resumed != plain {
		t.Fatal("resumed stdout differs from plain run")
	}
}
