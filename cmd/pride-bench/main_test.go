package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScaled(t *testing.T) {
	cases := []struct {
		full, scale, min, want int
	}{
		{10_000_000, 1, 1000, 10_000_000},
		{10_000_000, 100, 1000, 100_000},
		{10_000_000, 1_000_000, 1000, 1000}, // floor
		{200_000, 200, 1000, 1000},
	}
	for _, c := range cases {
		if got := scaled(c.full, c.scale, c.min); got != c.want {
			t.Errorf("scaled(%d, %d, %d) = %d, want %d", c.full, c.scale, c.min, got, c.want)
		}
	}
}

func TestEnginesCoverTheGuardedHotPaths(t *testing.T) {
	guarded := 0
	names := map[string]bool{}
	for _, e := range engines(1) {
		if names[e.name] {
			t.Errorf("duplicate engine name %q", e.name)
		}
		names[e.name] = true
		if e.unitsPerOp < 1 {
			t.Errorf("engine %q has unitsPerOp %d", e.name, e.unitsPerOp)
		}
		if e.guardAllocs {
			guarded++
		}
	}
	if guarded < 3 {
		t.Fatalf("only %d alloc-guarded engines; want the PrIDE, PARA and skip-ahead hot paths", guarded)
	}
	for _, want := range []string{
		"loss-engine-10M", "loss-event-10M", "rounds-event",
		"pride-hot-path", "para-hot-path", "pride-skip-path",
		"attack-event", "pattern-loss-event",
	} {
		if !names[want] {
			t.Errorf("engine %q missing", want)
		}
	}
}

func report(recs ...record) benchReport {
	return benchReport{SchemaVersion: schemaVersion, Scale: 1, Benchmarks: recs}
}

func TestCompareReportsAllocGate(t *testing.T) {
	base := report(record{Name: "x", Unit: "ACT", NsPerUnit: 10, AllocsPerOp: 0, GuardAllocs: true})
	fresh := report(record{Name: "x", Unit: "ACT", NsPerUnit: 10, AllocsPerOp: 1, GuardAllocs: true})
	var out strings.Builder
	if failures := compareReports(fresh, base, -1, &out); failures != 1 {
		t.Fatalf("failures = %d, want 1\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("no alloc diagnostic:\n%s", out.String())
	}
}

func TestCompareReportsUnguardedAllocsPass(t *testing.T) {
	base := report(record{Name: "x", Unit: "period", NsPerUnit: 10, AllocsPerOp: 5})
	fresh := report(record{Name: "x", Unit: "period", NsPerUnit: 10, AllocsPerOp: 9})
	var out strings.Builder
	if failures := compareReports(fresh, base, -1, &out); failures != 0 {
		t.Fatalf("failures = %d, want 0 for an unguarded engine\n%s", failures, out.String())
	}
}

func TestCompareReportsNsGate(t *testing.T) {
	base := report(record{Name: "x", Unit: "period", NsPerUnit: 100})
	slow := report(record{Name: "x", Unit: "period", NsPerUnit: 140})
	var out strings.Builder
	if failures := compareReports(slow, base, 0.25, &out); failures != 1 {
		t.Fatalf("failures = %d, want 1 for a 40%% regression at 25%% tolerance\n%s", failures, out.String())
	}
	out.Reset()
	if failures := compareReports(slow, base, -1, &out); failures != 0 {
		t.Fatalf("failures = %d, want 0 with the time gate disabled\n%s", failures, out.String())
	}
	out.Reset()
	within := report(record{Name: "x", Unit: "period", NsPerUnit: 120})
	if failures := compareReports(within, base, 0.25, &out); failures != 0 {
		t.Fatalf("failures = %d, want 0 within tolerance\n%s", failures, out.String())
	}
}

func TestCompareReportsMissingBaselineIsNew(t *testing.T) {
	base := report(record{Name: "retired", Unit: "ACT", NsPerUnit: 2})
	fresh := report(record{Name: "brand-new", Unit: "ACT", NsPerUnit: 1, GuardAllocs: true, AllocsPerOp: 7})
	var out strings.Builder
	if failures := compareReports(fresh, base, 0.25, &out); failures != 0 {
		t.Fatalf("failures = %d, want 0 for a benchmark absent from the baseline", failures)
	}
	if !strings.Contains(out.String(), "NEW") || !strings.Contains(out.String(), "brand-new") {
		t.Fatalf("new benchmark not reported as NEW:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "GONE") || !strings.Contains(out.String(), "retired") {
		t.Fatalf("baseline-only benchmark not reported as GONE:\n%s", out.String())
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("no error for a missing baseline")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := loadBaseline(bad); err == nil {
		t.Error("no error for malformed JSON")
	}
	wrong := filepath.Join(dir, "wrong.json")
	raw, _ := json.Marshal(benchReport{SchemaVersion: schemaVersion + 1})
	os.WriteFile(wrong, raw, 0o644)
	if _, err := loadBaseline(wrong); err == nil {
		t.Error("no error for a wrong schema version")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-scale", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("-scale 0: exit %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
}

// TestRunEndToEnd measures every engine at an extreme smoke scale, writes the
// JSON report, and gates it against a synthetic all-passing baseline. Skipped
// in -short mode: testing.Benchmark targets ~1s per engine.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness run is slow")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "fresh.json")
	basePath := filepath.Join(dir, "base.json")

	// Synthetic baseline: same engine names, generous alloc budgets, so the
	// alloc gate is exercised end-to-end without a second measuring pass.
	base := benchReport{SchemaVersion: schemaVersion, Scale: 20_000}
	for _, e := range engines(1) {
		base.Benchmarks = append(base.Benchmarks, record{
			Name: e.name, Unit: e.unit, UnitsPerOp: e.unitsPerOp,
			NsPerUnit: 1, AllocsPerOp: 1 << 30, GuardAllocs: e.guardAllocs,
		})
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr strings.Builder
	code := run([]string{"-scale", "20000", "-out", outPath, "-compare", basePath, "-max-ns-regress", "-1"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}

	fresh, err := loadBaseline(outPath)
	if err != nil {
		t.Fatalf("re-reading emitted report: %v", err)
	}
	if len(fresh.Benchmarks) != len(base.Benchmarks) {
		t.Fatalf("emitted %d benchmarks, want %d", len(fresh.Benchmarks), len(base.Benchmarks))
	}
	for _, r := range fresh.Benchmarks {
		if r.NsPerOp <= 0 || r.NsPerUnit <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Name, r)
		}
		if r.GuardAllocs && r.AllocsPerOp != 0 {
			t.Errorf("%s: guarded hot path allocated %d allocs/op", r.Name, r.AllocsPerOp)
		}
	}
	if !strings.Contains(stdout.String(), "ok") {
		t.Fatalf("comparison summary missing:\n%s", stdout.String())
	}
}
