// Command pride-bench is the engine benchmark-regression harness: it runs
// the tier-2 engine benchmarks in-process via testing.Benchmark, emits a
// machine-readable JSON report (ns/op, ns/unit, allocs/op per engine), and
// optionally compares the fresh numbers against a committed baseline
// (BENCH_engines.json at the repository root).
//
// Usage:
//
//	pride-bench                                   # full scale, report to stdout
//	pride-bench -out BENCH_engines.json           # refresh the committed baseline
//	pride-bench -scale 100 -compare BENCH_engines.json -max-ns-regress -1
//	                                              # CI smoke: allocs-only gate
//
// Comparison semantics:
//
//   - Engines marked guard_allocs are the zero-allocation hot paths; any
//     allocs/op increase over the baseline fails the run. Allocations per op
//     are scale-invariant for these engines (one op = one activation), so
//     the gate is meaningful even for -scale smoke runs.
//   - Time is compared on ns/unit (roughly scale-invariant) with the
//     -max-ns-regress tolerance; a negative tolerance disables the time
//     gate, which is what CI uses on noisy shared runners.
//   - Benchmarks missing from the baseline are reported as NEW and pass;
//     baseline entries no longer measured are reported as GONE and pass.
//     Either state clears on the next `pride-bench -out BENCH_engines.json`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"pride/internal/addrmap"
	"pride/internal/baseline"
	"pride/internal/core"
	"pride/internal/dram"
	eng "pride/internal/engine"
	"pride/internal/memctrl"
	"pride/internal/montecarlo"
	"pride/internal/patterns"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/system"
	"pride/internal/trace"
	"pride/internal/workload"
)

const schemaVersion = 1

// engine is one harnessed benchmark: a named workload with a known per-op
// unit count so times can be compared across scales.
type engine struct {
	name string
	// unit is the work unit ("period", "ACT", "round").
	unit string
	// unitsPerOp is how many units one benchmark op processes.
	unitsPerOp int
	// guardAllocs marks the zero-allocation hot paths whose allocs/op must
	// never regress.
	guardAllocs bool
	bench       func(b *testing.B)
}

// record is one engine's measured result as serialized into the report.
type record struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"`
	UnitsPerOp  int     `json:"units_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerUnit   float64 `json:"ns_per_unit"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	GuardAllocs bool    `json:"guard_allocs"`
}

// benchReport is the JSON document pride-bench emits.
type benchReport struct {
	SchemaVersion int      `json:"schema_version"`
	Scale         int      `json:"scale"`
	Benchmarks    []record `json:"benchmarks"`
}

// sink defeats dead-code elimination of benchmark results.
var sink uint64

// scaled divides a full-scale workload size by the smoke divisor, keeping a
// floor so even extreme scales exercise the real code paths.
func scaled(full, scale, min int) int {
	n := full / scale
	if n < min {
		n = min
	}
	return n
}

// engines builds the harnessed benchmark list at the given workload scale.
func engines(scale int) []engine {
	w := 79 // DDR5 ACTs per tREFI (Table I)

	lossPeriods := scaled(10_000_000, scale, 1_000)
	lossCfg := montecarlo.LossConfig{
		Entries: 1, Window: w, InsertionProb: 1.0 / float64(w), Periods: lossPeriods,
	}

	rounds := scaled(100_000, scale, 100)
	roundCfg := montecarlo.RoundConfig{
		Entries: 4, Window: w, InsertionProb: 1.0 / float64(w+1), TRH: 3800, Rounds: rounds,
	}

	attackACTs := scaled(200_000, scale, 1_000)
	ap := dram.DDR5()
	ap.RowsPerBank = 8192
	ap.RowBits = 13
	attackCfg := sim.AttackConfig{Params: ap, ACTs: attackACTs}

	lossActs := scaled(400_000, scale, 1_000)

	sysTREFIs := scaled(20_000, scale, 50)
	sysCfg := system.Config{Params: ap, Banks: 4, TRH: 4000, MaxTREFI: sysTREFIs}

	// Server-scale replay workload: a 64-shard topology (4 channels x 2 ranks
	// x 8 banks) driven by the lbm-calibrated generator.
	replayMapping := addrmap.Mapping{ColumnBits: 4, BankBits: 3, RowBits: 12, RankBits: 1, ChannelBits: 2, XORBankHash: true}
	replayRecords := scaled(400_000, scale, 4_000)
	traceRecords := scaled(1<<21, scale, 8_192)

	return []engine{
		{
			name: "loss-engine-10M", unit: "period", unitsPerOp: lossPeriods,
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := montecarlo.SimulateLoss(lossCfg, rng.New(1))
					sink += res.PerPosition[0].Insertions
				}
			},
		},
		{
			name: "loss-event-10M", unit: "period", unitsPerOp: lossPeriods,
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := montecarlo.SimulateLossEvent(lossCfg, rng.New(1))
					sink += res.PerPosition[0].Insertions
				}
			},
		},
		{
			name: "rounds-engine", unit: "round", unitsPerOp: rounds,
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := montecarlo.SimulateRounds(roundCfg, rng.New(1))
					sink += uint64(res.Failures)
				}
			},
		},
		{
			name: "rounds-event", unit: "round", unitsPerOp: rounds,
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := montecarlo.SimulateRoundsEvent(roundCfg, rng.New(1))
					sink += uint64(res.Failures)
				}
			},
		},
		{
			name: "pride-hot-path", unit: "ACT", unitsPerOp: 1, guardAllocs: true,
			bench: func(b *testing.B) {
				trk := core.New(core.DefaultConfig(w), rng.New(1))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					trk.OnActivate(i & 0x1FFFF)
					if i%w == w-1 {
						trk.OnMitigate()
					}
				}
				sink += trk.Stats().Insertions
			},
		},
		{
			name: "para-hot-path", unit: "ACT", unitsPerOp: 1, guardAllocs: true,
			bench: func(b *testing.B) {
				trk := baseline.NewPARA(1.0/float64(w+1), rng.New(1))
				// Warm up so the pending-mitigation buffer reaches its
				// steady-state capacity before allocations are counted.
				for i := 0; i < 4*w; i++ {
					trk.OnActivate(i & 0x1FFFF)
				}
				trk.DrainImmediate()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					trk.OnActivate(i & 0x1FFFF)
					if i%w == w-1 {
						sink += uint64(len(trk.DrainImmediate()))
					}
				}
			},
		},
		{
			name: "pride-skip-path", unit: "insertion", unitsPerOp: 1, guardAllocs: true,
			bench: func(b *testing.B) {
				// The event engines' per-insertion inner loop: one geometric
				// gap draw, bulk idle advance split at mitigation boundaries,
				// one forced insertion. Must stay allocation-free.
				r := rng.New(1)
				trk := core.New(core.DefaultConfig(w), r)
				sk := rng.NewSkip(rng.NewThreshold(trk.InsertionProb()))
				b.ReportAllocs()
				b.ResetTimer()
				pos := 0
				for i := 0; i < b.N; i++ {
					g := r.SkipT(sk)
					for g >= w-pos {
						step := w - pos
						trk.AdvanceIdle(step)
						trk.OnMitigate()
						g -= step
						pos = 0
					}
					trk.AdvanceIdle(g)
					pos += g
					trk.ActivateInsert(i & 0x1FFFF)
					if pos++; pos == w {
						trk.OnMitigate()
						pos = 0
					}
				}
				sink += trk.Stats().Insertions
			},
		},
		{
			name: "group-run-path", unit: "ACT", unitsPerOp: 790, guardAllocs: true,
			bench: func(b *testing.B) {
				// The batched multi-row inner loop of the event engines: one
				// forced insertion, then a 789-ACT insertion-free walk of the
				// double-sided pair through ActivateRunGroup (boundary walk
				// until the REF cadence drains the FIFO, quiet-cadence
				// collapse for the rest). Must stay allocation-free once the
				// cycle plan is compiled.
				pat := patterns.DoubleSided(4000)
				rows, _ := pat.Group()
				ctrl := memctrl.New(memctrl.DefaultConfig(ap), dram.MustNewBank(ap, 0), core.New(core.DefaultConfig(w), rng.New(1)))
				ctrl.ActivateRunGroup(rows, 0, 790) // compile the plan outside the timer
				b.ReportAllocs()
				b.ResetTimer()
				phase := 0
				for i := 0; i < b.N; i++ {
					ctrl.ActivateInsert(rows[phase])
					phase = (phase + 1) % 2
					ctrl.ActivateRunGroup(rows, phase, 789)
					phase = (phase + 789) % 2
				}
				sink += ctrl.Stats().ACTs
			},
		},
		{
			name: "attack-engine", unit: "ACT", unitsPerOp: attackACTs,
			bench: func(b *testing.B) {
				pat := patterns.DoubleSided(4000)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := sim.RunAttack(attackCfg, sim.PrIDEScheme(), pat, uint64(i))
					sink += uint64(res.MaxDisturbance)
				}
			},
		},
		{
			name: "attack-event", unit: "ACT", unitsPerOp: attackACTs,
			bench: func(b *testing.B) {
				pat := patterns.DoubleSided(4000)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := sim.RunAttackEngine(attackCfg, sim.PrIDEScheme(), pat, uint64(i), eng.Event)
					sink += uint64(res.MaxDisturbance)
				}
			},
		},
		{
			name: "system-ttf-engine", unit: "tREFI", unitsPerOp: sysCfg.Banks * sysTREFIs,
			bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := system.RunEngine(sysCfg, sim.PrIDEScheme(), uint64(i), eng.Exact)
					sink += uint64(res.TREFIsSimulated)
				}
			},
		},
		{
			name: "system-ttf-event", unit: "tREFI", unitsPerOp: sysCfg.Banks * sysTREFIs,
			bench: func(b *testing.B) {
				// The multi-tREFI bulk advance: at a surviving threshold the
				// per-bank pass retires thousands of refresh windows per gap
				// draw, so ns/tREFI collapses vs the stepped engine.
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := system.RunEngine(sysCfg, sim.PrIDEScheme(), uint64(i), eng.Event)
					sink += uint64(res.TREFIsSimulated)
				}
			},
		},
		{
			name: "pattern-loss-engine", unit: "ACT", unitsPerOp: lossActs,
			bench: func(b *testing.B) {
				pat := patterns.DoubleSided(4000)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m := sim.MeasurePatternLoss(4, w, pat, lossActs, uint64(i))
					sink += uint64(len(m.Rows))
				}
			},
		},
		{
			name: "pattern-loss-event", unit: "ACT", unitsPerOp: lossActs,
			bench: func(b *testing.B) {
				pat := patterns.DoubleSided(4000)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m := sim.MeasurePatternLossEngine(4, w, pat, lossActs, uint64(i), eng.Event)
					sink += uint64(len(m.Rows))
				}
			},
		},
		{
			name: "trace-decode", unit: "record", unitsPerOp: traceRecords, guardAllocs: true,
			bench: func(b *testing.B) {
				// The streaming binary-trace decoder: one op decodes the whole
				// encoded stream through a reused Reader (Reset) and record
				// batch, so the alloc gate pins decoding at zero allocations
				// per op, not just per record.
				spec := workload.SPEC2017()[1] // lbm
				addrs, err := trace.Drain(workload.NewAddrSource(spec, replayMapping, traceRecords, 7), nil)
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				if err := trace.WriteAll(&buf, replayMapping, addrs); err != nil {
					b.Fatal(err)
				}
				data := buf.Bytes()
				br := bytes.NewReader(data)
				r, err := trace.NewReader(br)
				if err != nil {
					b.Fatal(err)
				}
				batch := make([]uint64, 4096)
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					br.Reset(data)
					if err := r.Reset(br); err != nil {
						b.Fatal(err)
					}
					for {
						n, err := r.ReadBatch(batch)
						for _, a := range batch[:n] {
							sink += a
						}
						if err != nil {
							break
						}
					}
				}
			},
		},
		{
			name: "server-replay-path", unit: "ACT", unitsPerOp: replayRecords,
			bench: func(b *testing.B) {
				// The full serial replay path: demux the record stream into
				// per-shard queues, then drive every bank's controller,
				// tracker and disturbance accounting through it.
				spec := workload.SPEC2017()[1] // lbm
				addrs, err := trace.Drain(workload.NewAddrSource(spec, replayMapping, replayRecords, 7), nil)
				if err != nil {
					b.Fatal(err)
				}
				topo, err := system.NewTopology(system.TopologyConfig{
					Params:  dram.DDR5(),
					Mapping: replayMapping,
					Scheme:  sim.PrIDEScheme(),
					TRH:     1000,
					Seed:    1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := topo.Replay(trace.NewSliceSource(replayMapping, addrs))
					if err != nil {
						b.Fatal(err)
					}
					sink += uint64(res.CRC32)
				}
			},
		},
	}
}

// measure runs every engine once through testing.Benchmark.
func measure(scale int, stderr io.Writer) benchReport {
	rep := benchReport{SchemaVersion: schemaVersion, Scale: scale}
	for _, e := range engines(scale) {
		fmt.Fprintf(stderr, "bench %-20s ...", e.name)
		r := testing.Benchmark(e.bench)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		rep.Benchmarks = append(rep.Benchmarks, record{
			Name:        e.name,
			Unit:        e.unit,
			UnitsPerOp:  e.unitsPerOp,
			NsPerOp:     nsPerOp,
			NsPerUnit:   nsPerOp / float64(e.unitsPerOp),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GuardAllocs: e.guardAllocs,
		})
		fmt.Fprintf(stderr, " %12.1f ns/op %8d allocs/op\n", nsPerOp, r.AllocsPerOp())
	}
	return rep
}

// loadBaseline reads a previously-emitted report.
func loadBaseline(path string) (benchReport, error) {
	var base benchReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return base, fmt.Errorf("pride-bench: reading baseline: %w", err)
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return base, fmt.Errorf("pride-bench: parsing baseline %s: %w", path, err)
	}
	if base.SchemaVersion != schemaVersion {
		return base, fmt.Errorf("pride-bench: baseline %s has schema %d, want %d", path, base.SchemaVersion, schemaVersion)
	}
	return base, nil
}

// compareReports checks fresh against the baseline and reports the number of
// gate failures. maxNsRegress < 0 disables the time gate. Benchmarks absent
// from the baseline are new since the baseline was committed: they are
// reported ("NEW") and pass, so adding a benchmark never requires
// regenerating the baseline in the same change. Baseline entries no longer
// measured are noted ("GONE") and also pass — the baseline is refreshed by
// the next `pride-bench -out`.
func compareReports(fresh, base benchReport, maxNsRegress float64, stdout io.Writer) int {
	byName := make(map[string]record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	measured := make(map[string]bool, len(fresh.Benchmarks))
	failures := 0
	for _, r := range fresh.Benchmarks {
		measured[r.Name] = true
		b, ok := byName[r.Name]
		if !ok {
			fmt.Fprintf(stdout, "NEW  %-20s %.2f ns/%s, %d allocs/op (not in baseline; passes)\n",
				r.Name, r.NsPerUnit, r.Unit, r.AllocsPerOp)
			continue
		}
		if r.GuardAllocs && r.AllocsPerOp > b.AllocsPerOp {
			fmt.Fprintf(stdout, "FAIL %-20s allocs/op %d > baseline %d\n", r.Name, r.AllocsPerOp, b.AllocsPerOp)
			failures++
			continue
		}
		if maxNsRegress >= 0 && b.NsPerUnit > 0 && r.NsPerUnit > b.NsPerUnit*(1+maxNsRegress) {
			fmt.Fprintf(stdout, "FAIL %-20s %.2f ns/%s > baseline %.2f (+%.0f%% tolerance)\n",
				r.Name, r.NsPerUnit, r.Unit, b.NsPerUnit, maxNsRegress*100)
			failures++
			continue
		}
		fmt.Fprintf(stdout, "ok   %-20s %.2f ns/%s, %d allocs/op (baseline %.2f, %d)\n",
			r.Name, r.NsPerUnit, r.Unit, r.AllocsPerOp, b.NsPerUnit, b.AllocsPerOp)
	}
	for _, b := range base.Benchmarks {
		if !measured[b.Name] {
			fmt.Fprintf(stdout, "GONE %-20s in baseline but not measured (removed or renamed)\n", b.Name)
		}
	}
	return failures
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "", "write the JSON report to this file (\"\" = stdout)")
		compare = fs.String("compare", "", "baseline JSON report to gate against (\"\" disables)")
		scale   = fs.Int("scale", 1, "workload divisor for smoke runs (1 = full scale)")
		maxNs   = fs.Float64("max-ns-regress", 0.25,
			"tolerated ns/unit regression vs -compare as a fraction (negative disables the time gate)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scale < 1 {
		fmt.Fprintln(stderr, "-scale must be >= 1")
		return 2
	}

	rep := measure(*scale, stderr)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	raw = append(raw, '\n')
	if *out == "" {
		stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if *compare != "" {
		base, err := loadBaseline(*compare)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if base.Scale != rep.Scale {
			fmt.Fprintf(stdout, "note: comparing scale=%d run against scale=%d baseline (ns/unit is scale-adjusted)\n",
				rep.Scale, base.Scale)
		}
		if failures := compareReports(rep, base, *maxNs, stdout); failures > 0 {
			fmt.Fprintf(stderr, "pride-bench: %d benchmark gate(s) failed\n", failures)
			return 1
		}
	}
	return 0
}
