// The cross-design tracker shootout: every tracker in the zoo
// (sim.SearchSchemes) side by side on the axes the paper trades off —
// analytic security (TRH*), per-bank SRAM cost (storage bits), simulator
// throughput (ns/ACT), and the committed corpus's best attack. Counter
// trackers have no analytic column: their failure modes depend on the
// pattern, which is the paper's central contrast.
//
// The JSON report regression-gates everything EXCEPT timing: TRH*, storage
// bits and the corpus columns are deterministic, so any drift against a
// committed baseline means a tracker, the analytic model, or the corpus
// changed behaviour. ns/ACT is machine-dependent and never compared. A
// tracker missing from the baseline is NEW and passes; a baseline tracker no
// longer measured is GONE and fails — dropping a design from the zoo must be
// an explicit baseline refresh, not an accident.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"pride/internal/analytic"
	"pride/internal/corpus"
	"pride/internal/dram"
	"pride/internal/patterns"
	"pride/internal/report"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/tracker"
)

type shootoutOptions struct {
	CorpusDir string
	ACTs      int
	TTFYears  float64
	JSONOut   string
	Compare   string
}

// shootoutRow is one tracker's line in the shootout. Pointer fields are nil
// when the axis does not exist for the design (no analytic model, no
// committed corpus entry) — the text table renders those as "-".
type shootoutRow struct {
	Scheme      string   `json:"scheme"`
	TRHStar     *float64 `json:"trh_star,omitempty"`
	StorageBits int      `json:"storage_bits"`
	NsPerACT    float64  `json:"ns_per_act"`
	CorpusBest  *int     `json:"corpus_best,omitempty"`
	CorpusClass string   `json:"corpus_class,omitempty"`
}

type shootoutReport struct {
	ACTs     int           `json:"acts"`
	TTFYears float64       `json:"ttf_years"`
	Rows     []shootoutRow `json:"rows"`
}

// timingParams is the reduced bank geometry the ns/ACT measurement runs at —
// the corpus's own scale, so MOAT's per-row state stays cheap to build.
func timingParams() dram.Params {
	p := dram.DDR5()
	p.RowsPerBank = 8192
	p.RowBits = 13
	return p
}

// buildShootout measures every tracker in the zoo and assembles the report.
func buildShootout(opts shootoutOptions) (shootoutReport, error) {
	entries, err := corpus.Load(opts.CorpusDir)
	if err != nil {
		return shootoutReport{}, fmt.Errorf("loading corpus for the shootout columns: %w", err)
	}
	committed := make(map[string]corpus.Sidecar, len(entries))
	for _, e := range entries {
		committed[e.Sidecar.Scheme] = e.Sidecar
	}

	analyticByName := map[string]analytic.Result{}
	paper := dram.DDR5()
	for _, s := range analytic.AllSchemes() {
		r := analytic.EvaluateScheme(s, paper, opts.TTFYears)
		analyticByName[s.String()] = r
	}

	pat := patterns.TRRespass(500, 6, 2)
	tp := timingParams()
	rep := shootoutReport{ACTs: opts.ACTs, TTFYears: opts.TTFYears}
	for _, s := range sim.SearchSchemes() {
		// Storage is quoted at the paper's full DDR5 geometry (17-bit rows)
		// so PrIDE lands on its published 85-bit budget.
		bits := s.New(paper, rng.New(1)).StorageBits()

		start := time.Now()
		sim.RunAttack(sim.AttackConfig{Params: tp, ACTs: opts.ACTs}, s, pat.Clone(), 1)
		ns := float64(time.Since(start).Nanoseconds()) / float64(opts.ACTs)

		row := shootoutRow{Scheme: s.Name, StorageBits: bits, NsPerACT: ns}
		if r, ok := analyticByName[s.Name]; ok {
			trh := r.TRHStar
			row.TRHStar = &trh
		}
		if side, ok := committed[s.Name]; ok {
			best := side.ExpectedDisturbance
			row.CorpusBest = &best
			row.CorpusClass = string(side.Class)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// renderShootout prints the human-readable table.
func renderShootout(rep shootoutReport, stdout io.Writer) {
	t := report.NewTable(
		fmt.Sprintf("Tracker shootout (%d ACTs/design, target TTF %s)",
			rep.ACTs, report.FormatTTFYears(rep.TTFYears)),
		"Tracker", "TRH*", "Storage bits", "ns/ACT", "Corpus best", "Class")
	for _, r := range rep.Rows {
		trh, best, class := "-", "-", "-"
		if r.TRHStar != nil {
			trh = fmt.Sprintf("%.0f", *r.TRHStar)
		}
		if r.CorpusBest != nil {
			best = fmt.Sprintf("%d", *r.CorpusBest)
			class = r.CorpusClass
		}
		t.AddRow(r.Scheme, trh, r.StorageBits, fmt.Sprintf("%.1f", r.NsPerACT), best, class)
	}
	t.Render(stdout)
	fmt.Fprintln(stdout, "\nTRH* '-' means the design has no pattern-independent analytic bound.")
	fmt.Fprintf(stdout, "MOAT's storage is SRAM only; its per-row PRAC counters add %d DRAM-side bits/bank.\n",
		tracker.NewMOAT(dram.DDR5().RowsPerBank, dram.DDR5().RowBits,
			tracker.DefaultMOATATI, tracker.DefaultMOATATO).DRAMCounterBits())
	fmt.Fprintln(stdout, "'climbing' corpus entries are the designs the adversarial search still defeats.")
}

// compareShootouts gates fresh against a committed baseline. Timing is never
// compared. Returns the number of failures.
func compareShootouts(fresh, base shootoutReport, stdout io.Writer) int {
	baseByScheme := make(map[string]shootoutRow, len(base.Rows))
	for _, r := range base.Rows {
		baseByScheme[r.Scheme] = r
	}
	failures := 0
	seen := map[string]bool{}
	for _, f := range fresh.Rows {
		seen[f.Scheme] = true
		b, ok := baseByScheme[f.Scheme]
		if !ok {
			fmt.Fprintf(stdout, "NEW  %-12s not in baseline; passes (refresh the baseline to gate it)\n", f.Scheme)
			continue
		}
		if !floatPtrEqual(f.TRHStar, b.TRHStar) {
			fmt.Fprintf(stdout, "FAIL %-12s TRH* %s, baseline %s — the analytic model changed\n",
				f.Scheme, fmtFloatPtr(f.TRHStar), fmtFloatPtr(b.TRHStar))
			failures++
		}
		if f.StorageBits != b.StorageBits {
			fmt.Fprintf(stdout, "FAIL %-12s storage %d bits, baseline %d — the tracker's cost changed\n",
				f.Scheme, f.StorageBits, b.StorageBits)
			failures++
		}
		if !intPtrEqual(f.CorpusBest, b.CorpusBest) || f.CorpusClass != b.CorpusClass {
			fmt.Fprintf(stdout, "FAIL %-12s corpus best %s (%s), baseline %s (%s) — the committed corpus changed\n",
				f.Scheme, fmtIntPtr(f.CorpusBest), orDash(f.CorpusClass),
				fmtIntPtr(b.CorpusBest), orDash(b.CorpusClass))
			failures++
		}
	}
	for _, b := range base.Rows {
		if !seen[b.Scheme] {
			fmt.Fprintf(stdout, "FAIL %-12s in baseline but no longer measured — dropping a tracker from the zoo requires an explicit baseline refresh\n", b.Scheme)
			failures++
		}
	}
	if failures == 0 {
		fmt.Fprintf(stdout, "shootout matches baseline: %d trackers gated on TRH*, storage and corpus columns (timing ignored)\n",
			len(fresh.Rows))
	}
	return failures
}

func floatPtrEqual(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	// The analytic columns are deterministic; the epsilon only absorbs the
	// JSON round-trip's decimal formatting.
	return math.Abs(*a-*b) <= 1e-6*math.Max(1, math.Abs(*b))
}

func intPtrEqual(a, b *int) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func fmtFloatPtr(p *float64) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", *p)
}

func fmtIntPtr(p *int) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%d", *p)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func runShootout(opts shootoutOptions, stdout, stderr io.Writer) int {
	if opts.ACTs < 1 {
		fmt.Fprintln(stderr, "-acts must be >= 1")
		return 2
	}
	rep, err := buildShootout(opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	renderShootout(rep, stdout)

	if opts.JSONOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(opts.JSONOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\nwrote JSON report to %s\n", opts.JSONOut)
	}
	if opts.Compare != "" {
		blob, err := os.ReadFile(opts.Compare)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		var base shootoutReport
		if err := json.Unmarshal(blob, &base); err != nil {
			fmt.Fprintf(stderr, "parsing baseline %s: %v\n", opts.Compare, err)
			return 1
		}
		fmt.Fprintln(stdout)
		if failures := compareShootouts(rep, base, stdout); failures > 0 {
			fmt.Fprintf(stderr, "shootout deviates from baseline %s in %d place(s)\n", opts.Compare, failures)
			return 1
		}
	}
	return 0
}
