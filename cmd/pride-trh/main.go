// Command pride-trh is a calculator for the paper's security model: given a
// tracker configuration (entries, mitigation window, insertion probability)
// and a target time-to-fail, it prints the loss probability, the critical
// Rowhammer thresholds (Eq. 8, Section VI), and — given a device TRH-D —
// the expected bank and system time-to-fail (Table IX's math for arbitrary
// configurations).
//
// With -shootout it instead renders the cross-design tracker shootout: every
// tracker in the zoo side by side with its analytic TRH* (where one exists),
// per-bank storage bits, simulator throughput, and the committed corpus's
// best attack against it.
//
// Usage:
//
//	pride-trh                                   # paper-default PrIDE
//	pride-trh -entries 8 -window 40 -p 0.025    # custom tracker
//	pride-trh -device-trhd 1500                 # TTF for a real device
//	pride-trh -shootout                         # tracker zoo shootout
//	pride-trh -shootout -json out.json -compare SHOOTOUT_baseline.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/report"
)

// printDecomposition shows how each failure mode of Section II-G
// contributes to the final TRH*: the idealized insertion-failure-only
// threshold (Eq. 4), the retention-failure penalty from the lossy buffer
// (Eq. 6), and the tardiness term (Eq. 8).
func printDecomposition(r analytic.Result, ttf float64, stdout io.Writer) {
	ideal := analytic.TRHStarTIF(r.P, r.RoundTime, ttf)
	withTRF := r.TRHStarNoTardiness
	t := report.NewTable("\nFailure-mode decomposition (Section II-G / Eq. 4-8)",
		"Failure modes included", "TRH*", "Penalty vs ideal")
	t.AddRow("TIF only (idealized, Eq. 4)", ideal, "-")
	t.AddRow("TIF + TRF (lossy buffer, Eq. 6)", withTRF,
		fmt.Sprintf("+%.0f", withTRF-ideal))
	t.AddRow("TIF + TRF + Tardiness (Eq. 8)", r.TRHStar,
		fmt.Sprintf("+%.0f", r.TRHStar-ideal))
	t.Render(stdout)
	fmt.Fprintf(stdout, "Interpretation: retention failures cost %.0f activations of threshold; the\n",
		withTRF-ideal)
	fmt.Fprintf(stdout, "FIFO's bounded mitigation delay costs another %d (= N*W). Counter trackers\n",
		r.Tardiness)
	fmt.Fprintln(stdout, "cannot even write this table: their failure modes depend on the pattern.")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected so the CLI surface is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-trh", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		entries    = fs.Int("entries", 4, "tracker FIFO entries N")
		explain    = fs.Bool("explain", false, "also print the failure-mode decomposition (TIF/TRF/tardiness)")
		window     = fs.Int("window", 0, "mitigation window W in ACTs (0 = derive from DDR5 tREFI: 79)")
		p          = fs.Float64("p", 0, "insertion probability (0 = 1/(W+1), the transitive-safe default)")
		ttf        = fs.Float64("ttf", analytic.DefaultTargetTTFYears, "target time-to-fail per bank, years")
		deviceTRHD = fs.Int("device-trhd", 0, "optional device TRH-D: also print expected TTF")

		shootout   = fs.Bool("shootout", false, "render the cross-design tracker shootout instead of the calculator")
		corpusDir  = fs.String("corpus", "corpus", "committed attack corpus directory for the shootout's corpus columns")
		acts       = fs.Int("acts", 200_000, "activations per tracker for the shootout's ns/ACT measurement")
		jsonOut    = fs.String("json", "", "also write the shootout as a JSON report to this path")
		comparePth = fs.String("compare", "", "baseline shootout JSON to gate against (timing is never gated)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *shootout {
		return runShootout(shootoutOptions{
			CorpusDir: *corpusDir,
			ACTs:      *acts,
			TTFYears:  *ttf,
			JSONOut:   *jsonOut,
			Compare:   *comparePth,
		}, stdout, stderr)
	}

	params := dram.DDR5()
	w := *window
	if w == 0 {
		w = params.ACTsPerTREFI()
	}
	ins := *p
	if ins == 0 {
		ins = 1 / float64(w+1)
	}
	if ins <= 0 || ins > 1 || *entries < 1 || w < 1 {
		fmt.Fprintln(stderr, "invalid configuration: need entries >= 1, window >= 1, 0 < p <= 1")
		return 2
	}

	round := params.TREFI * time.Duration(w) / time.Duration(params.ACTsPerTREFI())
	r := analytic.Analyze("custom", *entries, w, ins, round, *ttf)

	t := report.NewTable("PrIDE security model", "Quantity", "Value")
	t.AddRow("Entries (N)", r.Entries)
	t.AddRow("Window (W)", r.Window)
	t.AddRow("Insertion probability (p)", fmt.Sprintf("%.6f (1/%.1f)", r.P, 1/r.P))
	t.AddRow("Worst-case loss probability (L)", r.Loss)
	t.AddRow("Effective p-hat = p(1-L)", r.PHat)
	t.AddRow("Max tardiness (N*W)", r.Tardiness)
	t.AddRow("TRH-S* (single-sided)", r.TRHStar)
	t.AddRow("TRH-D* (double-sided)", r.TRHDoubleSided())
	t.AddRow("TRH* (BR=2 victim sharing)", r.TRHVictimSharing(4))
	t.AddRow("Target TTF (bank)", report.FormatTTFYears(*ttf))
	t.Render(stdout)

	if *explain {
		printDecomposition(r, *ttf, stdout)
	}

	if *deviceTRHD > 0 {
		chances := 2 * float64(*deviceTRHD)
		bank := analytic.BankTTFYears(r, chances)
		system := analytic.SystemTTFYears(r, chances, params.TFAWLimit)
		t2 := report.NewTable(fmt.Sprintf("\nExpected time-to-fail at device TRH-D = %d", *deviceTRHD),
			"Scope", "TTF")
		t2.AddRow("Per bank (continuous attack)", report.FormatTTFYears(bank))
		t2.AddRow(fmt.Sprintf("System (%d concurrent banks)", params.TFAWLimit), report.FormatTTFYears(system))
		t2.Render(stdout)
	}
	return 0
}
