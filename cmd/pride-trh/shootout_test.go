package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoCorpus points the shootout at the committed corpus two levels up.
const repoCorpus = "../../corpus"

func smokeOpts() shootoutOptions {
	return shootoutOptions{CorpusDir: repoCorpus, ACTs: 2_000, TTFYears: 10_000}
}

func TestShootoutCoversTheZoo(t *testing.T) {
	rep, err := buildShootout(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]shootoutRow{}
	for _, r := range rep.Rows {
		rows[r.Scheme] = r
	}
	for _, scheme := range []string{"PrIDE", "PrIDE+RFM40", "PrIDE+RFM16",
		"PRoHIT", "DSAC", "PARA-MC", "PARFM", "TRR", "MINT", "MOAT"} {
		if _, ok := rows[scheme]; !ok {
			t.Errorf("shootout missing %s", scheme)
		}
	}

	// The paper's published bit budgets anchor the storage column.
	if got := rows["PrIDE"].StorageBits; got != 85 {
		t.Errorf("PrIDE storage %d bits, want the paper's 85", got)
	}
	if got := rows["MINT"].StorageBits; got != 32 {
		t.Errorf("MINT storage %d bits, want 32", got)
	}

	// Probabilistic trackers carry an analytic TRH*; pattern-dependent
	// counter designs must not pretend to have one.
	for _, scheme := range []string{"PrIDE", "MINT", "MOAT", "PARFM"} {
		if rows[scheme].TRHStar == nil {
			t.Errorf("%s has no analytic TRH*", scheme)
		}
	}
	for _, scheme := range []string{"PRoHIT", "DSAC", "TRR"} {
		if rows[scheme].TRHStar != nil {
			t.Errorf("%s reports an analytic TRH* (%v) but its failure modes are pattern-dependent",
				scheme, *rows[scheme].TRHStar)
		}
	}
	if trh := rows["MOAT"].TRHStar; trh != nil && *trh != 128 {
		t.Errorf("MOAT TRH* = %v, want the ATO cap 128", *trh)
	}

	// Every committed corpus entry for a zoo scheme must surface.
	for _, scheme := range []string{"PrIDE", "MINT", "MOAT", "TRR"} {
		if rows[scheme].CorpusBest == nil {
			t.Errorf("%s has no corpus column despite a committed entry", scheme)
		}
	}
}

func TestShootoutCompareGatesDeterministicColumns(t *testing.T) {
	rep, err := buildShootout(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Identical reports pass even with wildly different timing.
	noisy := rep
	noisy.Rows = append([]shootoutRow(nil), rep.Rows...)
	for i := range noisy.Rows {
		noisy.Rows[i].NsPerACT = rep.Rows[i].NsPerACT * 100
	}
	var out strings.Builder
	if failures := compareShootouts(noisy, rep, &out); failures != 0 {
		t.Fatalf("timing-only drift gated: %d failures\n%s", failures, out.String())
	}

	// A storage regression fails.
	tampered := rep
	tampered.Rows = append([]shootoutRow(nil), rep.Rows...)
	tampered.Rows[0].StorageBits++
	out.Reset()
	if failures := compareShootouts(tampered, rep, &out); failures != 1 {
		t.Fatalf("storage drift not gated: %d failures\n%s", failures, out.String())
	}

	// A corpus-column change fails.
	tampered.Rows = append([]shootoutRow(nil), rep.Rows...)
	worse := 999_999
	tampered.Rows[0].CorpusBest = &worse
	out.Reset()
	if failures := compareShootouts(tampered, rep, &out); failures != 1 {
		t.Fatalf("corpus drift not gated: %d failures\n%s", failures, out.String())
	}

	// A new tracker passes as NEW; a dropped tracker fails as GONE.
	grown := rep
	grown.Rows = append(append([]shootoutRow(nil), rep.Rows...), shootoutRow{Scheme: "BRAND-NEW"})
	out.Reset()
	if failures := compareShootouts(grown, rep, &out); failures != 0 {
		t.Fatalf("NEW tracker gated: %d failures\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "NEW") {
		t.Fatalf("NEW tracker not reported:\n%s", out.String())
	}
	shrunk := rep
	shrunk.Rows = rep.Rows[1:]
	out.Reset()
	if failures := compareShootouts(shrunk, rep, &out); failures != 1 {
		t.Fatalf("GONE tracker not gated: %d failures\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "GONE") && !strings.Contains(out.String(), "no longer measured") {
		t.Fatalf("GONE tracker not reported:\n%s", out.String())
	}
}

func TestShootoutMatchesCommittedBaseline(t *testing.T) {
	// The committed baseline must stay in sync with the code — the same gate
	// CI's shootout-smoke job applies.
	rep, err := buildShootout(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile("../../SHOOTOUT_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base shootoutReport
	if err := json.Unmarshal(blob, &base); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if failures := compareShootouts(rep, base, &out); failures != 0 {
		t.Fatalf("shootout deviates from committed SHOOTOUT_baseline.json (%d failures) — regenerate it with\n  go run ./cmd/pride-trh -shootout -acts 20000 -json SHOOTOUT_baseline.json\nonly after understanding which side changed:\n%s",
			failures, out.String())
	}
}

func TestRunShootoutEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "shootout.json")
	var out, errOut strings.Builder
	code := run([]string{"-shootout", "-acts", "2000", "-corpus", repoCorpus, "-json", jsonPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Tracker shootout", "PrIDE", "MINT", "MOAT", "Storage bits"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// Round-trip: compare against the JSON we just wrote.
	out.Reset()
	code = run([]string{"-shootout", "-acts", "2000", "-corpus", repoCorpus, "-compare", jsonPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("self-compare exit %d, stderr: %s\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "matches baseline") {
		t.Fatalf("self-compare did not report a match:\n%s", out.String())
	}
}

func TestRunShootoutErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-shootout", "-corpus", "/nonexistent"}, &out, &errOut); code != 1 {
		t.Errorf("missing corpus dir: exit %d, want 1", code)
	}
	if code := run([]string{"-shootout", "-acts", "0"}, &out, &errOut); code != 2 {
		t.Errorf("-acts 0: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-shootout", "-acts", "2000", "-corpus", repoCorpus, "-compare", bad}, &out, &errOut); code != 1 {
		t.Errorf("malformed baseline: exit %d, want 1", code)
	}
}

func TestRunCalculatorStillWorks(t *testing.T) {
	// The refactor to an injectable run() must not change the calculator.
	var out, errOut strings.Builder
	if code := run([]string{"-explain", "-device-trhd", "1500"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"PrIDE security model", "TRH-S*", "Failure-mode decomposition", "Expected time-to-fail"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if code := run([]string{"-entries", "0"}, &out, &errOut); code != 2 {
		t.Errorf("invalid config: exit %d, want 2", code)
	}
}
