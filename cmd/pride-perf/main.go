// Command pride-perf runs the performance and energy evaluations: Figure 14
// (normalized IPC of PrIDE and PrIDE+RFM across the 34 workloads), Table VII
// (the system configuration), and Table X (DRAM energy overheads).
//
// Usage:
//
//	pride-perf                      # Fig 14, quick fidelity
//	pride-perf -requests 250000     # higher fidelity
//	pride-perf -config              # Table VII
//	pride-perf -energy              # Table X
package main

import (
	"flag"
	"fmt"
	"os"

	"pride/internal/energy"
	"pride/internal/perfsim"
	"pride/internal/report"
	"pride/internal/workload"
)

func main() {
	var (
		requests = flag.Int("requests", 30_000, "DRAM requests simulated per workload per scheme")
		seed     = flag.Uint64("seed", 1, "trace seed")
		showCfg  = flag.Bool("config", false, "print the Table VII system configuration and exit")
		showEn   = flag.Bool("energy", false, "print the Table X energy overheads and exit")
		csv      = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	emit := func(t *report.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}

	if *showCfg {
		emit(tableVII())
		return
	}
	if *showEn {
		emit(tableX())
		return
	}
	emit(fig14(*requests, *seed))
}

func tableVII() *report.Table {
	cfg := perfsim.DefaultConfig()
	t := report.NewTable("Table VII: baseline system configuration", "Component", "Value")
	t.AddRow("Cores", fmt.Sprintf("%d cores, %.0f GHz, 8-wide fetch", cfg.Cores, cfg.CoreGHz))
	t.AddRow("Base CPI", cfg.BaseCPI)
	t.AddRow("Memory", "32 GB, DDR5")
	t.AddRow("tRCD-tCL-tRC", fmt.Sprintf("%.1f-%.1f-%v ns", cfg.TRCDNs, cfg.TCLNs, cfg.Params.TRC.Nanoseconds()))
	t.AddRow("Banks x Ranks x Channels", fmt.Sprintf("%dx1x1", cfg.Banks))
	t.AddRow("Rows", fmt.Sprintf("%dK rows", cfg.RowsPerBank/1024))
	t.AddRow("RFM block time", fmt.Sprintf("%.0f ns", cfg.RFMBlockNs))
	return t
}

func tableX() *report.Table {
	t := report.NewTable("Table X: DRAM energy overheads",
		"Config", "ACT Energy", "Non-ACT Energy", "Total Energy")
	t.AddRow("Base (No Mitig)", "1x (13% overall)", "1x (87% overall)", "1x")
	for _, r := range energy.TableX(energy.DefaultModel()) {
		t.AddRow(r.Scheme,
			fmt.Sprintf("%.3fx", r.ACTEnergyFactor),
			fmt.Sprintf("%.3fx", r.NonACTEnergyFactor),
			fmt.Sprintf("%.3fx", r.TotalFactor))
	}
	return t
}

func fig14(requests int, seed uint64) *report.Table {
	cfg := perfsim.DefaultConfig()
	rows := perfsim.Fig14(cfg, workload.All(), requests, seed)
	t := report.NewTable(
		fmt.Sprintf("Fig 14: normalized performance (%d requests/workload)", requests),
		"Workload", "PrIDE", "PrIDE+RFM40", "PrIDE+RFM16")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.4f", r.Normalized["PrIDE"]),
			fmt.Sprintf("%.4f", r.Normalized["PrIDE+RFM40"]),
			fmt.Sprintf("%.4f", r.Normalized["PrIDE+RFM16"]))
	}
	t.AddRow("GEOMEAN",
		fmt.Sprintf("%.4f", perfsim.GeoMean(rows, "PrIDE")),
		fmt.Sprintf("%.4f", perfsim.GeoMean(rows, "PrIDE+RFM40")),
		fmt.Sprintf("%.4f", perfsim.GeoMean(rows, "PrIDE+RFM16")))
	return t
}
