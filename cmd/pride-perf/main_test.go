package main

import (
	"strings"
	"testing"
)

func TestTableVIIContents(t *testing.T) {
	out := tableVII().String()
	for _, want := range []string{"4 cores", "3 GHz", "DDR5", "32x1x1", "128K rows", "180 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table VII missing %q:\n%s", want, out)
		}
	}
}

func TestTableXContents(t *testing.T) {
	out := tableX().String()
	for _, want := range []string{"Base (No Mitig)", "PrIDE", "PrIDE+RFM40", "PrIDE+RFM16", "13% overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table X missing %q:\n%s", want, out)
		}
	}
}

func TestFig14HasAllWorkloadsAndGeomean(t *testing.T) {
	tbl := fig14(2_000, 1)
	out := tbl.String()
	for _, want := range []string{"mcf", "lbm", "povray", "mix01", "mix17", "GEOMEAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 14 missing %q", want)
		}
	}
	// 34 workloads + geomean + header + separator + title.
	if rows := strings.Count(strings.TrimSpace(out), "\n") + 1; rows != 34+4 {
		t.Fatalf("Fig 14 rows = %d, want 38", rows)
	}
	// PrIDE column is exactly 1.0000 everywhere.
	if strings.Count(out, "1.0000") < 34 {
		t.Fatal("PrIDE normalized IPC must be 1.0000 for every workload")
	}
}
