package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pride/internal/patterns"
)

func TestFig15TableListsAllSchemes(t *testing.T) {
	tbl := fig15(4, 1, 30_000, 1, 2)
	out := tbl.String()
	for _, scheme := range []string{"PRoHIT", "DSAC", "PARA-MC", "PARFM",
		"PrIDE", "PrIDE+RFM40", "PrIDE+RFM16"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("scheme %s missing:\n%s", scheme, out)
		}
	}
}

func TestFig18TableCoversThreeSizes(t *testing.T) {
	tbl := fig18(300, 60_000, 1, 2)
	out := tbl.String()
	for _, n := range []string{"| 4 ", "| 6 ", "| 16 "} {
		if !strings.Contains(out, n) {
			t.Errorf("buffer size row %q missing:\n%s", n, out)
		}
	}
}

func TestFiguresWorkerCountInvariant(t *testing.T) {
	// The rendered tables must be byte-identical for every -workers value.
	want15 := fig15(3, 2, 20_000, 5, 1).String()
	want18 := fig18(300, 40_000, 5, 1).String()
	for _, workers := range []int{2, 4} {
		if got := fig15(3, 2, 20_000, 5, workers).String(); got != want15 {
			t.Errorf("fig15 output differs between workers 1 and %d", workers)
		}
		if got := fig18(300, 40_000, 5, workers).String(); got != want18 {
			t.Errorf("fig18 output differs between workers 1 and %d", workers)
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "15", "-patterns", "3", "-seeds", "1",
		"-acts", "20000", "-workers", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Fig 15") {
		t.Fatalf("figure missing from output:\n%s", out.String())
	}
}

func TestRunRejectsBadWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-1"} {
		var out, errOut strings.Builder
		if code := run([]string{"-fig", "15", "-workers", bad}, &out, &errOut); code != 2 {
			t.Errorf("-workers %s: exit code %d, want 2", bad, code)
		}
		if !strings.Contains(errOut.String(), "workers") {
			t.Errorf("-workers %s: no diagnostic on stderr: %q", bad, errOut.String())
		}
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-fig", "99"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown figure: exit code %d, want 2", code)
	}
}

func TestReplayTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "attack.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := patterns.WriteTrace(f, patterns.TRRespass(500, 6, 3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tbl, err := replayTrace(path, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "trrespass(n=6)") || !strings.Contains(out, "PrIDE") {
		t.Fatalf("replay output incomplete:\n%s", out)
	}
}

func TestReplayTraceErrors(t *testing.T) {
	if _, err := replayTrace("/nonexistent/file", 100, 1); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("seq: not-a-row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayTrace(bad, 100, 1); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
