package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pride/internal/patterns"
)

func TestFig15TableListsAllSchemes(t *testing.T) {
	tbl := fig15(4, 1, 30_000, 1)
	out := tbl.String()
	for _, scheme := range []string{"PRoHIT", "DSAC", "PARA-MC", "PARFM",
		"PrIDE", "PrIDE+RFM40", "PrIDE+RFM16"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("scheme %s missing:\n%s", scheme, out)
		}
	}
}

func TestFig18TableCoversThreeSizes(t *testing.T) {
	tbl := fig18(300, 60_000, 1)
	out := tbl.String()
	for _, n := range []string{"| 4 ", "| 6 ", "| 16 "} {
		if !strings.Contains(out, n) {
			t.Errorf("buffer size row %q missing:\n%s", n, out)
		}
	}
}

func TestReplayTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "attack.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := patterns.WriteTrace(f, patterns.TRRespass(500, 6, 3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tbl, err := replayTrace(path, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "trrespass(n=6)") || !strings.Contains(out, "PrIDE") {
		t.Fatalf("replay output incomplete:\n%s", out)
	}
}

func TestReplayTraceErrors(t *testing.T) {
	if _, err := replayTrace("/nonexistent/file", 100, 1); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("seq: not-a-row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayTrace(bad, 100, 1); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
