package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pride/internal/cli"
	"pride/internal/patterns"
)

// fig15Quiet / fig18Quiet run the figure builders with no campaign features
// enabled.
func fig15Quiet(t *testing.T, nPat, seeds, acts int, seed uint64, workers int) string {
	t.Helper()
	tbl, err := fig15(context.Background(), nPat, seeds, acts, seed, workers, false, cli.CampaignFlags{}, nil, io.Discard)
	if err != nil {
		t.Fatalf("fig15: %v", err)
	}
	return tbl.String()
}

func fig18Quiet(t *testing.T, scale, acts int, seed uint64, workers int) string {
	t.Helper()
	tbl, err := fig18(context.Background(), scale, acts, seed, workers, cli.CampaignFlags{}, nil, io.Discard)
	if err != nil {
		t.Fatalf("fig18: %v", err)
	}
	return tbl.String()
}

func TestFig15TableListsAllSchemes(t *testing.T) {
	out := fig15Quiet(t, 4, 1, 30_000, 1, 2)
	for _, scheme := range []string{"PRoHIT", "DSAC", "PARA-MC", "PARFM",
		"PrIDE", "PrIDE+RFM40", "PrIDE+RFM16"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("scheme %s missing:\n%s", scheme, out)
		}
	}
}

func TestFig15ZooFlagAddsSchemes(t *testing.T) {
	tbl, err := fig15(context.Background(), 2, 1, 20_000, 1, 2, true, cli.CampaignFlags{}, nil, io.Discard)
	if err != nil {
		t.Fatalf("fig15: %v", err)
	}
	out := tbl.String()
	for _, scheme := range []string{"MINT", "MOAT"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("zoo scheme %s missing:\n%s", scheme, out)
		}
	}
	// Without -zoo the line-up stays the paper's own.
	if base := fig15Quiet(t, 2, 1, 20_000, 1, 2); strings.Contains(base, "MINT") || strings.Contains(base, "MOAT") {
		t.Errorf("zoo schemes leaked into the default Fig 15 line-up:\n%s", base)
	}
}

func TestFig18TableCoversThreeSizes(t *testing.T) {
	out := fig18Quiet(t, 300, 60_000, 1, 2)
	for _, n := range []string{"| 4 ", "| 6 ", "| 16 "} {
		if !strings.Contains(out, n) {
			t.Errorf("buffer size row %q missing:\n%s", n, out)
		}
	}
}

func TestFiguresWorkerCountInvariant(t *testing.T) {
	// The rendered tables must be byte-identical for every -workers value.
	want15 := fig15Quiet(t, 3, 2, 20_000, 5, 1)
	want18 := fig18Quiet(t, 300, 40_000, 5, 1)
	for _, workers := range []int{2, 4} {
		if got := fig15Quiet(t, 3, 2, 20_000, 5, workers); got != want15 {
			t.Errorf("fig15 output differs between workers 1 and %d", workers)
		}
		if got := fig18Quiet(t, 300, 40_000, 5, workers); got != want18 {
			t.Errorf("fig18 output differs between workers 1 and %d", workers)
		}
	}
}

func TestRunWorkersFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-fig", "15", "-patterns", "3", "-seeds", "1",
		"-acts", "20000", "-workers", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Fig 15") {
		t.Fatalf("figure missing from output:\n%s", out.String())
	}
}

func TestRunRejectsBadWorkers(t *testing.T) {
	for _, bad := range []string{"0", "-1"} {
		var out, errOut strings.Builder
		if code := run(context.Background(), []string{"-fig", "15", "-workers", bad}, &out, &errOut); code != 2 {
			t.Errorf("-workers %s: exit code %d, want 2", bad, code)
		}
		if !strings.Contains(errOut.String(), "workers") {
			t.Errorf("-workers %s: no diagnostic on stderr: %q", bad, errOut.String())
		}
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-fig", "99"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown figure: exit code %d, want 2", code)
	}
}

func TestReplayTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "attack.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := patterns.WriteTrace(f, patterns.TRRespass(500, 6, 3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tbl, err := replayTrace(path, 20_000, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "trrespass(n=6)") || !strings.Contains(out, "PrIDE") {
		t.Fatalf("replay output incomplete:\n%s", out)
	}
}

func TestReplayTraceErrors(t *testing.T) {
	if _, err := replayTrace("/nonexistent/file", 100, 1, false); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("seq: not-a-row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayTrace(bad, 100, 1, false); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

// cancelOnProgress is a stderr sink that cancels the run's context as soon
// as the first progress line lands — a deterministic stand-in for a SIGINT
// arriving mid-campaign.
type cancelOnProgress struct {
	mu       sync.Mutex
	cancel   context.CancelFunc
	buf      strings.Builder
	canceled bool
}

func (w *cancelOnProgress) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.WriteString(string(p))
	if !w.canceled && strings.Contains(w.buf.String(), "progress campaign=") {
		w.canceled = true
		w.cancel()
	}
	return len(p), nil
}

func TestRunFig15InterruptAndResumeBitIdentical(t *testing.T) {
	args := []string{"-fig", "15", "-patterns", "3", "-seeds", "2", "-acts", "20000", "-workers", "2"}
	var plain strings.Builder
	if code := run(context.Background(), args, &plain, io.Discard); code != 0 {
		t.Fatalf("uninterrupted run failed: %d", code)
	}

	base := filepath.Join(t.TempDir(), "attack.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelOnProgress{cancel: cancel}
	var interrupted strings.Builder
	code := run(ctx, append(args, "-checkpoint", base, "-progress-every", "500us"), &interrupted, w)
	if code != cli.ExitInterrupted && code != 0 {
		t.Fatalf("interrupted run exited %d, want %d or completion", code, cli.ExitInterrupted)
	}
	if code == cli.ExitInterrupted {
		w.mu.Lock()
		hint := strings.Contains(w.buf.String(), "resume")
		w.mu.Unlock()
		if !hint {
			t.Fatal("no resume hint on stderr after interrupt")
		}
	}

	var resumed strings.Builder
	if code := run(context.Background(), append(args, "-checkpoint", base), &resumed, io.Discard); code != 0 {
		t.Fatalf("resumed run failed: %d", code)
	}
	if resumed.String() != plain.String() {
		t.Fatal("resumed stdout is not byte-identical to the uninterrupted run")
	}
}
