// Command pride-attack runs the attack-pattern evaluations: Figure 15
// (maximum disturbance of each tracker across the randomized pattern suite)
// and Figure 18 (measured vs modelled loss probability over adversarial
// traces).
//
// Usage:
//
//	pride-attack -fig 15 -patterns 500 -seeds 100 -acts 650000   # paper scale
//	pride-attack -fig 15                                          # quick run
//	pride-attack -fig 18 -scale 1                                 # all 900 traces
//	pride-attack -fig 15 -workers 1                               # serial execution
//	pride-attack -fig 15 -checkpoint f15.ckpt -progress-every 10s
//
// With -checkpoint, an interrupted (SIGINT) run saves every completed trial
// (one file per scheme or buffer size) and a rerun of the identical command
// resumes them, producing output bit-identical to an uninterrupted run at
// any -workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pride/internal/analytic"
	"pride/internal/cli"
	"pride/internal/dram"
	"pride/internal/patterns"
	"pride/internal/report"
	"pride/internal/sim"
	"pride/internal/trialrunner"
)

func main() {
	ctx, cancel := cli.SignalContext()
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI surface (flag
// parsing, error paths, exit codes) is testable. ctx cancellation (SIGINT in
// production) drains the attack campaigns gracefully: in-flight trials
// finish, land in the checkpoint when one is configured, and the process
// exits 130 with a resume hint.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-attack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.Int("fig", 15, "figure to regenerate (15 or 18)")
		trace    = fs.String("trace", "", "replay a trace file against every Fig 15 scheme instead of a figure")
		nPat     = fs.Int("patterns", 60, "Fig 15: number of random patterns (paper: 500)")
		seeds    = fs.Int("seeds", 3, "Fig 15: trials per pattern with different seeds (paper: 100)")
		acts     = fs.Int("acts", 200_000, "activations per trial (a full tREFW is ~650K)")
		scale    = fs.Int("scale", 30, "Fig 18: trace-count divisor (1 = the paper's 900 traces)")
		lossActs = fs.Int("loss-acts", 400_000, "Fig 18: activations per trace")
		seed     = fs.Uint64("seed", 1, "base seed")
		zoo      = fs.Bool("zoo", false, "include the tracker zoo (MINT, MOAT) in Fig 15 and trace replays")
		csv      = fs.Bool("csv", false, "emit CSV")
		workers  = fs.Int("workers", trialrunner.DefaultWorkers(),
			"worker goroutines for attack trials (>= 1; 1 = serial; results are worker-count invariant)")
		cf cli.CampaignFlags
		pf cli.ProfileFlags
	)
	cf.Register(fs)
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := trialrunner.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ctx, stopChaos, faults, err := cf.ChaosContext(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer stopChaos()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	if *trace != "" {
		t, err := replayTrace(*trace, *acts, *seed, *zoo)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if *csv {
			t.CSV(stdout)
		} else {
			t.Render(stdout)
		}
		return 0
	}

	var t *report.Table
	switch *fig {
	case 15:
		t, err = fig15(ctx, *nPat, *seeds, *acts, *seed, *workers, *zoo, cf, faults, stderr)
	case 18:
		t, err = fig18(ctx, *scale, *lossActs, *seed, *workers, cf, faults, stderr)
	default:
		fmt.Fprintln(stderr, "unknown figure: use -fig 15 or -fig 18")
		return 2
	}
	if err != nil {
		return cli.FailureCode(err, cf.Checkpoint, stderr)
	}
	if *csv {
		t.CSV(stdout)
	} else {
		t.Render(stdout)
	}
	return 0
}

// replayTrace runs one exported trace file against every Fig 15 scheme
// (plus the tracker zoo when requested).
func replayTrace(path string, acts int, seed uint64, zoo bool) (*report.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pat, err := patterns.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	p := dram.DDR5()
	// Size the bank to the trace's row span.
	maxRow := 0
	for _, row := range pat.Sequence {
		if row > maxRow {
			maxRow = row
		}
	}
	for p.RowsPerBank <= maxRow+8 {
		p.RowsPerBank *= 2
		p.RowBits++
	}
	cfg := sim.AttackConfig{Params: p, ACTs: acts}
	t := report.NewTable(
		fmt.Sprintf("Trace %s (%q, period %d) x %d ACTs", path, pat.Name, pat.Len(), acts),
		"Tracker", "Max Disturbance", "Peak Victim Hammers", "Mitigations")
	schemes := sim.Fig15Schemes()
	if zoo {
		schemes = append(schemes, sim.ZooSchemes()...)
	}
	for _, s := range schemes {
		res := sim.RunAttack(cfg, s, pat, seed)
		t.AddRow(s.Name, res.MaxDisturbance, res.MaxHammers, res.Mitigations)
	}
	return t, nil
}

func fig15(ctx context.Context, nPat, seeds, acts int, seed uint64, workers int, zoo bool, cf cli.CampaignFlags, faults trialrunner.TrialFaults, stderr io.Writer) (*report.Table, error) {
	p := dram.DDR5()
	p.RowsPerBank = 8192 // attacks span a small row window; smaller banks are faster
	p.RowBits = 13
	suite := patterns.Fig15Suite(p.RowsPerBank, nPat, seed)
	cfg := sim.AttackConfig{Params: p, ACTs: acts}

	pride := analytic.EvaluateScheme(analytic.SchemePrIDE, p, analytic.DefaultTargetTTFYears)
	t := report.NewTable(
		fmt.Sprintf("Fig 15: maximum disturbance across %d patterns x %d seeds (%d ACTs each; PrIDE TRH* = %.0f)",
			len(suite), seeds, acts, pride.TRHStar),
		"Tracker", "Max Disturbance", "Worst Pattern", "Peak Victim Hammers")
	schemes := sim.Fig15Schemes()
	if zoo {
		schemes = append(schemes, sim.ZooSchemes()...)
	}
	for _, s := range schemes {
		// One campaign (and one checkpoint file) per scheme: each section
		// resumes independently and the progress meter names the scheme.
		section := "fig15-" + s.Name
		camp, stop := cf.StartCampaign(ctx, section, len(suite)*seeds, workers, stderr)
		res, err := sim.MaxDisturbanceOverSuiteCampaign(ctx, cfg, s, suite, seeds, seed+uint64(len(s.Name)), sim.CampaignOptions{
			Workers:    workers,
			Checkpoint: cf.CheckpointAt(section),
			Progress:   camp,
			Observer:   camp,
			Engine:     cf.Engine.Kind,
			SelfCheck:  cf.SelfCheck,
			Retry:      cf.RetryPolicy(),
			Faults:     faults,
		})
		stop()
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name, res.MaxDisturbance, res.Pattern, res.MaxHammers)
	}
	return t, nil
}

func fig18(ctx context.Context, scale, acts int, seed uint64, workers int, cf cli.CampaignFlags, faults trialrunner.TrialFaults, stderr io.Writer) (*report.Table, error) {
	const rowLimit = 8192
	w := dram.DDR5().ACTsPerTREFI()
	suite := patterns.Fig18Suite(rowLimit, scale, seed)
	t := report.NewTable(
		fmt.Sprintf("Fig 18: measured vs modelled loss probability over %d traces", len(suite)),
		"Entries", "Model L", "Worst Measured L", "Traces Above Model (3-sigma)", "Traces")
	for _, n := range []int{4, 6, 16} {
		model := analytic.LossProbability(n, w, 1/float64(w))
		section := fmt.Sprintf("fig18-n%d", n)
		camp, stop := cf.StartCampaign(ctx, section, len(suite), workers, stderr)
		measurements, err := sim.MeasureSuiteLossCampaign(ctx, n, w, suite, acts, seed, sim.CampaignOptions{
			Workers:    workers,
			Checkpoint: cf.CheckpointAt(section),
			Progress:   camp,
			Observer:   camp,
			Engine:     cf.Engine.Kind,
			SelfCheck:  cf.SelfCheck,
			Retry:      cf.RetryPolicy(),
			Faults:     faults,
		})
		stop()
		if err != nil {
			return nil, err
		}
		worst, above := 0.0, 0
		for _, m := range measurements {
			// The paper reports the row with the highest loss probability.
			// A max over many sparsely-sampled rows is an order statistic,
			// so compare each row against the model with a binomial
			// 3-sigma allowance and take the worst WELL-SAMPLED row for
			// the headline column (the paper's 1M iterations per trace
			// make every reported row well-sampled).
			exceeded := false
			for _, row := range m.Rows {
				resolved := row.Evicted + row.Mitigated
				if resolved < 200 {
					continue
				}
				l := row.LossProb()
				sigma := math.Sqrt(model * (1 - model) / float64(resolved))
				if l > worst {
					worst = l
				}
				if l > model+3*sigma {
					exceeded = true
				}
			}
			if exceeded {
				above++
			}
		}
		t.AddRow(n, model, worst, above, len(suite))
	}
	return t, nil
}
