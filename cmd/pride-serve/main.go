// Command pride-serve runs the campaign server daemon: an HTTP/JSON front
// end over the same deterministic campaign stack the CLIs drive. Clients
// POST campaign specs (security, attack, ttfsim, replay) to /v1/jobs and
// poll /v1/jobs/<id>; results are cached by the campaign's canonical
// checkpoint key, so a repeat submission with the same config+seed is served
// without recompute, and a submission interrupted by a daemon restart
// resumes from its persisted checkpoint.
//
// Usage:
//
//	pride-serve -data /var/lib/pride -addr :8321
//	pride-serve -data ./srv -addr 127.0.0.1:0 -progress-every 10s
//	pride-serve -data ./srv -job-retries 2 -job-deadline 5m -rate 10
//
// SIGTERM/SIGINT drains gracefully: /readyz flips to 503, new submissions
// are rejected, in-flight campaigns checkpoint, and the process exits 130
// when jobs were interrupted (they are reported resumable; resubmitting the
// identical spec after restart resumes from the checkpoint) or 0 after a
// clean idle drain. -chaos arms the deterministic fault injector across the
// server sites (server.enqueue, job.run, job.result-write, trace.read) and
// the campaign sites beneath them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"pride/internal/cli"
	"pride/internal/faultinject"
	"pride/internal/server"
	"pride/internal/trialrunner"
)

func main() {
	ctx, cancel := cli.SignalContext()
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected. ctx cancellation (SIGTERM in
// production) triggers the graceful drain; the exit code is 130 when the
// drain interrupted jobs, matching the CLI interruption convention.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pride-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8321", "listen address (host:port; port 0 picks a free port)")
		dataDir  = fs.String("data", "", "data directory for the result cache and job checkpoints (required)")
		queue    = fs.Int("queue", 64, "job queue depth; a full queue rejects submissions with 503")
		jobs     = fs.Int("jobs", 2, "concurrent jobs")
		cworkers = fs.Int("campaign-workers", 0, "per-campaign trial worker pool size (0 = all cores)")
		retries  = fs.Int("job-retries", 2, "retry a failed job this many times before marking it failed")
		deadline = fs.Duration("job-deadline", 0, "per-attempt job deadline, e.g. 5m (0 disables); a timed-out attempt checkpoints and the retry resumes")
		backoff  = fs.Duration("job-backoff", 100*time.Millisecond, "first retry's backoff, doubling per attempt with deterministic jitter")
		maxBack  = fs.Duration("job-max-backoff", 5*time.Second, "backoff cap")
		rate     = fs.Float64("rate", 0, "per-client submission rate limit in requests/second (0 disables)")
		burst    = fs.Int("rate-burst", 10, "rate-limit burst size")
		progress = fs.Duration("progress-every", 0, "emit a structured progress line (job-lifecycle counters included) to stderr at this interval (0 disables)")
		chaos    = fs.String("chaos", "", `deterministic fault-injection schedule, e.g. "server.enqueue:nth=1;job.run:nth=1" ("" disables)`)
		chaosSd  = fs.Uint64("chaos-seed", 1, "seed for the -chaos schedule's probabilistic triggers")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataDir == "" {
		fmt.Fprintln(stderr, "-data is required")
		return 2
	}
	var faults *faultinject.Injector
	if *chaos != "" {
		inj, err := faultinject.Parse(*chaosSd, *chaos)
		if err != nil {
			fmt.Fprintf(stderr, "-chaos: %v\n", err)
			return 2
		}
		faults = inj
	}

	srv, err := server.New(server.Config{
		DataDir:         *dataDir,
		QueueDepth:      *queue,
		JobWorkers:      *jobs,
		CampaignWorkers: *cworkers,
		JobRetry: trialrunner.RetryPolicy{
			Attempts:   *retries + 1,
			Deadline:   *deadline,
			Backoff:    *backoff,
			MaxBackoff: *maxBack,
		},
		RateLimit: *rate,
		RateBurst: *burst,
		Faults:    faults,
		Log:       stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The resolved address line is load-bearing: scripts and the CI smoke
	// job parse it to find a port-0 listener.
	fmt.Fprintf(stderr, "pride-serve listening on %s data=%s\n", ln.Addr(), *dataDir)

	srv.Start()
	stopReporter := srv.Campaign().StartReporter(ctx, stderr, *progress)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopReporter()
		srv.Drain()
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: flip readiness, reject new work, checkpoint
	// in-flight campaigns, then close the listener.
	fmt.Fprintln(stderr, "draining: waiting for in-flight jobs to checkpoint")
	drained := srv.Drain()
	stopReporter()
	if *progress > 0 {
		fmt.Fprintln(stderr, srv.Campaign().Line())
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, err)
	}
	if drained > 0 {
		fmt.Fprintf(stderr, "interrupted: %d job(s) resumable; restart the daemon and resubmit the same specs to resume from their checkpoints\n", drained)
		return cli.ExitInterrupted
	}
	fmt.Fprintln(stdout, "drained cleanly")
	return 0
}
