package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunFlagAndConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
		msg  string
	}{
		{"unknown flag", []string{"-nope"}, 2, ""},
		{"missing data dir", []string{"-addr", "127.0.0.1:0"}, 2, "-data is required"},
		{"bad chaos spec", []string{"-data", t.TempDir(), "-chaos", "nonsense"}, 2, "-chaos"},
		{"unlistenable addr", []string{"-data", t.TempDir(), "-addr", "256.0.0.1:1"}, 1, ""},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if got := run(context.Background(), tc.args, &stdout, &stderr); got != tc.want {
			t.Errorf("%s: run = %d, want %d (stderr: %s)", tc.name, got, tc.want, stderr.String())
		}
		if tc.msg != "" && !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
	}
}

// TestRunServesAndDrainsCleanly drives the daemon through its real lifecycle:
// start on a free port, serve a submission to completion, cancel the context
// (what SIGTERM does) and assert the clean-drain exit code 0.
func TestRunServesAndDrainsCleanly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data", t.TempDir()}, &stdout, &stderr)
	}()

	addrRE := regexp.MustCompile(`pride-serve listening on ([^ ]+) `)
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("no listening line on stderr: %q", stderr.String())
	}

	spec := `{"kind":"security","seed":5,"security":{"entries":1,"window":16,"periods":2000}}`
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job struct{ ID string }
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit = %d id=%q", resp.StatusCode, job.ID)
	}
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		r, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s", addr, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		var st struct{ State string }
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" {
			t.Fatal("job failed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("idle drain exit = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("stdout %q missing clean-drain message", stdout.String())
	}
}

// syncBuffer is a bytes.Buffer safe for the writer goroutine + reader test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
