// Package corpus replays the committed attack corpus — the paper's
// Section VII-F security claim as a regression suite.
//
// Every entry in this directory is the best attack an island-model search
// (cmd/pride-fuzz) found against one tracker, committed as a trace plus a
// JSON sidecar. This test re-runs each attack against a freshly-built
// tracker and asserts:
//
//   - the replayed disturbance is within the sidecar's tolerance of the
//     committed value (the simulator and trackers still behave the same);
//   - "bounded" entries stay at or below the analytic PrIDE bound TRH*;
//   - "climbing" entries stay above it AND above PrIDE's own replayed
//     disturbance — the counter-based trackers remain attackable, so the
//     contrast that carries the paper's central claim cannot silently rot.
//
// If this suite goes red, see EXPERIMENTS.md ("Adversarial search & corpus
// replay") for the triage procedure. Do not regenerate the corpus to make
// it green without understanding which side changed.
package corpus

import (
	"strings"
	"testing"

	icorpus "pride/internal/corpus"
)

// load reads the committed entries next to this test file.
func load(t *testing.T) []icorpus.Entry {
	t.Helper()
	entries, err := icorpus.Load(".")
	if err != nil {
		t.Fatalf("loading committed corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("committed corpus is empty")
	}
	return entries
}

func TestCorpusCoversTheLineUp(t *testing.T) {
	entries := load(t)
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Sidecar.Scheme] = true
	}
	for _, required := range []string{"PrIDE", "MINT", "MOAT"} {
		if !seen[required] {
			t.Errorf("no committed entry for %s", required)
		}
	}
	baselines := 0
	for scheme := range seen {
		if !strings.HasPrefix(scheme, "PrIDE") {
			baselines++
		}
	}
	if baselines < 4 {
		t.Errorf("only %d baseline entries committed, want >= 4 (%v)", baselines, seen)
	}
	climbing := 0
	for _, e := range entries {
		if e.Sidecar.Class == icorpus.ClassClimbing {
			climbing++
		}
	}
	if climbing == 0 {
		t.Error("no climbing entries: the suite would no longer demonstrate the contrast")
	}
}

func TestCorpusReplays(t *testing.T) {
	entries := load(t)

	// PrIDE's replayed disturbance anchors the cross-entry contrast.
	prideMeasured := -1
	measured := make(map[string]int, len(entries))
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			m, err := e.Verify()
			if err != nil {
				t.Fatal(err)
			}
			measured[e.Name] = m
			if e.Sidecar.Scheme == "PrIDE" {
				prideMeasured = m
			}
			t.Logf("%s (%s): replayed %d, committed %d, analytic bound %.1f",
				e.Sidecar.Scheme, e.Sidecar.Class, m, e.Sidecar.ExpectedDisturbance, e.Sidecar.Bound())
		})
	}
	if t.Failed() {
		return
	}
	if prideMeasured < 0 {
		t.Fatal("no PrIDE entry replayed")
	}
	for _, e := range entries {
		if e.Sidecar.Class != icorpus.ClassClimbing {
			continue
		}
		if m := measured[e.Name]; m <= prideMeasured {
			t.Errorf("%s: climbing entry replayed %d, not above PrIDE's %d — the counter-based tracker no longer looks worse than PrIDE under guided attack",
				e.Sidecar.Scheme, m, prideMeasured)
		}
	}
}
