// TTF planner: given the Rowhammer threshold of the DRAM devices you are
// deploying, pick the cheapest PrIDE configuration that keeps the system's
// expected time-to-failure above your reliability budget — the deployment
// decision Table IX supports.
//
// Run with:
//
//	go run ./examples/ttfplanner            # survey standard device classes
//	go run ./examples/ttfplanner -trhd 900  # plan for a specific device
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttfplanner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trhd   = fs.Int("trhd", 0, "your device's double-sided Rowhammer threshold (0 = survey)")
		budget = fs.Float64("budget-years", 100, "minimum acceptable system TTF in years")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	params := dram.DDR5()
	schemes := []analytic.Scheme{
		analytic.SchemePrIDE,
		analytic.SchemePrIDERFM40,
		analytic.SchemePrIDERFM16,
	}
	// Deployment costs, from Fig 14's slowdowns.
	cost := map[string]string{
		"PrIDE":       "zero slowdown",
		"PrIDE+RFM40": "~0.1% slowdown",
		"PrIDE+RFM16": "~1.6% slowdown",
	}

	recommend := func(trhd int) (string, float64) {
		rows := analytic.DeviceTTFTable(params, []int{trhd}, schemes)
		for _, s := range schemes {
			ttf := rows[0].TTFYears[s.String()]
			if ttf >= *budget {
				return s.String(), ttf
			}
		}
		return "", 0
	}

	if *trhd > 0 {
		name, ttf := recommend(*trhd)
		if name == "" {
			fmt.Fprintf(stdout, "No PrIDE configuration meets %.0f years at TRH-D=%d.\n", *budget, *trhd)
			fmt.Fprintln(stdout, "Such devices need a higher mitigation rate than RFM16 provides")
			fmt.Fprintln(stdout, "(or per-row counters — the expensive road the paper argues against).")
			return 0
		}
		fmt.Fprintf(stdout, "Device TRH-D = %d, budget = %.0f years:\n", *trhd, *budget)
		fmt.Fprintf(stdout, "  -> deploy %s (%s), expected system TTF %s\n",
			name, cost[name], report.FormatTTFYears(ttf))
		return 0
	}

	t := report.NewTable(
		fmt.Sprintf("Cheapest scheme meeting a %.0f-year system TTF (%d concurrently attacked banks)",
			*budget, params.TFAWLimit),
		"Device TRH-D", "Recommendation", "Expected TTF", "Cost")
	for _, d := range []int{4800, 2400, 2000, 1600, 1200, 1000, 800, 600, 400, 200} {
		name, ttf := recommend(d)
		if name == "" {
			t.AddRow(d, "(beyond PrIDE+RFM16)", "-", "-")
			continue
		}
		t.AddRow(d, name, report.FormatTTFYears(ttf), cost[name])
	}
	fmt.Fprint(stdout, t)
	return 0
}
