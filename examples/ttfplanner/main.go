// TTF planner: given the Rowhammer threshold of the DRAM devices you are
// deploying, pick the cheapest PrIDE configuration that keeps the system's
// expected time-to-failure above your reliability budget — the deployment
// decision Table IX supports.
//
// Run with:
//
//	go run ./examples/ttfplanner            # survey standard device classes
//	go run ./examples/ttfplanner -trhd 900  # plan for a specific device
package main

import (
	"flag"
	"fmt"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/report"
)

func main() {
	var (
		trhd   = flag.Int("trhd", 0, "your device's double-sided Rowhammer threshold (0 = survey)")
		budget = flag.Float64("budget-years", 100, "minimum acceptable system TTF in years")
	)
	flag.Parse()

	params := dram.DDR5()
	schemes := []analytic.Scheme{
		analytic.SchemePrIDE,
		analytic.SchemePrIDERFM40,
		analytic.SchemePrIDERFM16,
	}
	// Deployment costs, from Fig 14's slowdowns.
	cost := map[string]string{
		"PrIDE":       "zero slowdown",
		"PrIDE+RFM40": "~0.1% slowdown",
		"PrIDE+RFM16": "~1.6% slowdown",
	}

	recommend := func(trhd int) (string, float64) {
		rows := analytic.DeviceTTFTable(params, []int{trhd}, schemes)
		for _, s := range schemes {
			ttf := rows[0].TTFYears[s.String()]
			if ttf >= *budget {
				return s.String(), ttf
			}
		}
		return "", 0
	}

	if *trhd > 0 {
		name, ttf := recommend(*trhd)
		if name == "" {
			fmt.Printf("No PrIDE configuration meets %.0f years at TRH-D=%d.\n", *budget, *trhd)
			fmt.Println("Such devices need a higher mitigation rate than RFM16 provides")
			fmt.Println("(or per-row counters — the expensive road the paper argues against).")
			return
		}
		fmt.Printf("Device TRH-D = %d, budget = %.0f years:\n", *trhd, *budget)
		fmt.Printf("  -> deploy %s (%s), expected system TTF %s\n",
			name, cost[name], report.FormatTTFYears(ttf))
		return
	}

	t := report.NewTable(
		fmt.Sprintf("Cheapest scheme meeting a %.0f-year system TTF (%d concurrently attacked banks)",
			*budget, params.TFAWLimit),
		"Device TRH-D", "Recommendation", "Expected TTF", "Cost")
	for _, d := range []int{4800, 2400, 2000, 1600, 1200, 1000, 800, 600, 400, 200} {
		name, ttf := recommend(d)
		if name == "" {
			t.AddRow(d, "(beyond PrIDE+RFM16)", "-", "-")
			continue
		}
		t.AddRow(d, name, report.FormatTTFYears(ttf), cost[name])
	}
	fmt.Print(t)
}
