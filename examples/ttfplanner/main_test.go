package main

import (
	"strings"
	"testing"
)

func TestPlannerSurveyMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Cheapest scheme", "Device TRH-D", "4800"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPlannerSpecificDevice(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-trhd", "2400"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "deploy") && !strings.Contains(out.String(), "No PrIDE configuration") {
		t.Fatalf("planner produced neither a recommendation nor a refusal:\n%s", out.String())
	}
}

func TestPlannerRejectsUnknownFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}
