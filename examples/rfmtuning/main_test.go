package main

import (
	"strings"
	"testing"
)

func TestRFMTuningSmoke(t *testing.T) {
	var out strings.Builder
	run(&out, 1_500) // short perf-model horizon; the demo default is 6000
	for _, want := range []string{"PrIDE+RFM design space", "RFM threshold", "TRH-D*", "off (1 per tREFI)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
