// RFM tuning: sweep the RFM threshold and chart the three-way trade-off the
// PrIDE+RFM co-design exposes (Section V): tolerated Rowhammer threshold
// vs performance slowdown vs energy overhead.
//
// Run with:
//
//	go run ./examples/rfmtuning
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"pride/internal/analytic"
	"pride/internal/dram"
	"pride/internal/energy"
	"pride/internal/perfsim"
	"pride/internal/report"
	"pride/internal/workload"
)

func main() {
	run(os.Stdout, 6_000)
}

// run sweeps the RFM design space; cycles sets the perf-model horizon per
// workload (tests use a shorter one than the demo default).
func run(out io.Writer, cycles int) {
	params := dram.DDR5()
	em := energy.DefaultModel()

	t := report.NewTable("PrIDE+RFM design space: security vs performance vs energy",
		"RFM threshold", "p", "TRH-S*", "TRH-D*", "Avg slowdown", "Total energy")
	for _, th := range []int{0, 64, 40, 32, 24, 16, 8} {
		// Security: the tracker's mitigation window shrinks to the RFM
		// threshold, and p is revised to 1/(th+1) (Section V-B).
		w := params.ACTsPerTREFI()
		if th > 0 {
			w = th
		}
		round := params.TREFI * time.Duration(w) / time.Duration(params.ACTsPerTREFI())
		r := analytic.Analyze("PrIDE", 4, w, 1/float64(w+1), round, analytic.DefaultTargetTTFYears)

		// Performance: geometric-mean slowdown across the 34 workloads.
		slow := 0.0
		if th > 0 {
			slow = measureSlowdown(perfsim.DefaultConfig(), th, cycles)
		}

		// Energy: one 2-row mitigation per REF window plus per-RFM window.
		act := energy.Activity{
			Scheme:                fmt.Sprintf("RFM%d", th),
			VictimRefreshesPerACT: 2.0 / 80,
			RNGAccessesPerACT:     1,
			ExecTimeFactor:        1 + slow,
		}
		if th > 0 {
			act.VictimRefreshesPerACT += 2.0 / float64(th+1)
		}
		ov := em.Evaluate(act)

		label := "off (1 per tREFI)"
		if th > 0 {
			label = fmt.Sprintf("%d", th)
		}
		t.AddRow(label,
			fmt.Sprintf("1/%d", w+1),
			r.TRHStar, r.TRHDoubleSided(),
			fmt.Sprintf("%.2f%%", slow*100),
			fmt.Sprintf("%.3fx", ov.TotalFactor))
	}
	fmt.Fprint(out, t)
	fmt.Fprintln(out, "\nThe sweet spots the paper picks: RFM40 (~2x rate) nearly halves TRH* for ~0.1%")
	fmt.Fprintln(out, "slowdown; RFM16 (~5x rate) reaches TRH-D* ~400 for ~1.6% slowdown and ~2% energy.")
}

// measureSlowdown runs the perf model across all workloads at the given RFM
// threshold and returns the geometric-mean slowdown vs the no-RFM baseline.
func measureSlowdown(cfg perfsim.Config, threshold, cycles int) float64 {
	specs := workload.All()
	logSum := 0.0
	for _, spec := range specs {
		base := cfg
		base.RFMThreshold = 0
		b := perfsim.Run(base, spec, cycles, 1)
		rfm := cfg
		rfm.RFMThreshold = threshold
		r := perfsim.Run(rfm, spec, cycles, 1)
		ratio := r.IPC / b.IPC
		if ratio <= 0 {
			return 0
		}
		logSum += math.Log(ratio)
	}
	return 1 - math.Exp(logSum/float64(len(specs)))
}
