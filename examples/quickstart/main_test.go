package main

import (
	"strings"
	"testing"
)

func TestQuickstartSmoke(t *testing.T) {
	var out strings.Builder
	run(&out)
	for _, want := range []string{"DDR5", "PrIDE", "mitigations dispatched", "Analytic bound"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
