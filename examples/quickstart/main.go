// Quickstart: build a PrIDE-protected DRAM bank, stream an attack at it,
// and watch the tracker catch the aggressor.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"

	"pride/internal/analytic"
	"pride/internal/core"
	"pride/internal/dram"
	"pride/internal/memctrl"
	"pride/internal/rng"
)

func main() {
	run(os.Stdout)
}

func run(out io.Writer) {
	// 1. DDR5 parameters straight from the paper's Table I.
	params := dram.DDR5()
	fmt.Fprintf(out, "DDR5: W = %d ACTs per tREFI, ~%dK ACTs per tREFW\n",
		params.ACTsPerTREFI(), params.ACTsPerTREFW()/1000)

	// 2. The paper-default PrIDE tracker: 4-entry FIFO, p = 1/80,
	//    transitive-attack protection. 10 bytes of SRAM per bank.
	trk := core.New(core.DefaultConfig(params.ACTsPerTREFI()), rng.New(42))
	fmt.Fprintf(out, "PrIDE: %d entries, %d bits of SRAM\n",
		trk.Config().Entries, trk.StorageBits())

	// 3. A bank with a (deliberately low, for demo speed) Rowhammer
	//    threshold, glued to the tracker by the memory controller.
	bank := dram.MustNewBank(params, 0)
	ctrl := memctrl.New(memctrl.DefaultConfig(params), bank, trk)

	// 4. Hammer one row for ~40 refresh intervals and watch PrIDE's
	//    probabilistic sampling end the attack rounds.
	const aggressor = 12345
	for i := 0; i < 40*params.ACTsPerTREFI(); i++ {
		ctrl.Activate(aggressor)
	}
	st := ctrl.Stats()
	fmt.Fprintf(out, "\nAfter %d activations of row %d:\n", st.ACTs, aggressor)
	fmt.Fprintf(out, "  mitigations dispatched:  %d\n", st.Mitigations)
	fmt.Fprintf(out, "  victim rows refreshed:   %d\n", st.VictimRefreshes)
	fmt.Fprintf(out, "  longest attack round:    %d ACTs\n", bank.MaxDisturbance())
	fmt.Fprintf(out, "  victim peak disturbance: %d hammers\n", bank.MaxHammers())

	// 5. The analytic guarantee behind it (Eq. 8): across ALL patterns,
	//    not just this one.
	r := analytic.EvaluateScheme(analytic.SchemePrIDE, params, analytic.DefaultTargetTTFYears)
	fmt.Fprintf(out, "\nAnalytic bound: TRH-S* = %.0f, TRH-D* = %.0f at a %s-per-bank target\n",
		r.TRHStar, r.TRHDoubleSided(), "10,000-year")
	fmt.Fprintf(out, "Any DDR5 device with TRH-D above %.0f is safe under PrIDE — for every access pattern.\n",
		r.TRHDoubleSided())
}
