package main

import (
	"strings"
	"testing"
)

func TestAdjacencySmoke(t *testing.T) {
	var out strings.Builder
	run(&out)
	for _, want := range []string{"Internal victim row", "MC-side", "In-DRAM", "Bit Flips"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
