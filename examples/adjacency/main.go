// Adjacency demo: why Rowhammer mitigation wants to live inside the DRAM
// chip (Section II-D). DRAM vendors remap row addresses internally, so the
// memory controller cannot know which rows are physically adjacent — and a
// controller-side defense that refreshes the wrong neighbours protects
// nothing. The in-DRAM tracker sees the true geometry.
//
// Run with:
//
//	go run ./examples/adjacency
package main

import (
	"fmt"
	"io"
	"os"

	"pride/internal/addrmap"
	"pride/internal/dram"
	"pride/internal/report"
)

func main() {
	run(os.Stdout)
}

func run(out io.Writer) {
	params := dram.DDR5()
	params.RowsPerBank = 4096
	params.RowBits = 12
	const trh = 300

	scrambler := addrmap.NewRowScrambler(params.RowsPerBank, 0xC0FFEE)

	// The attacker reverse-engineers the internal geometry (TRRespass and
	// Blacksmith both do) and picks internally adjacent aggressors.
	victim := 2048
	aggLo, aggHi := victim-1, victim+1
	fmt.Fprintf(out, "Internal victim row %d; aggressors at internal %d and %d\n", victim, aggLo, aggHi)
	fmt.Fprintf(out, "Externally those aggressors are rows %d and %d — not adjacent at all.\n\n",
		scrambler.Unscramble(aggLo), scrambler.Unscramble(aggHi))

	type outcome struct {
		name     string
		flips    int
		refreshd string
	}
	var results []outcome

	hammer := func(mitigate func(b *dram.Bank, externalAgg int)) int {
		bank := dram.MustNewBank(params, trh)
		for i := 0; i < 4*trh; i++ {
			bank.Activate(aggLo)
			bank.Activate(aggHi)
			if i%16 == 15 {
				ext := scrambler.Unscramble(aggLo)
				if i%32 == 31 {
					ext = scrambler.Unscramble(aggHi)
				}
				mitigate(bank, ext)
			}
		}
		return len(bank.Flips())
	}

	// Controller-side: refreshes the internal locations of external r±1.
	mcFlips := hammer(func(b *dram.Bank, ext int) {
		lo, hi := scrambler.ExternalGuessNeighbors(ext)
		b.Mitigate(lo, 1)
		b.Mitigate(hi, 1)
	})
	results = append(results, outcome{"MC-side (guesses external adjacency)", mcFlips,
		"external r±1 (wrong rows)"})

	// In-DRAM: the device applies the victim refresh at the true location.
	inDRAMFlips := hammer(func(b *dram.Bank, ext int) {
		b.Mitigate(scrambler.Scramble(ext), 1)
	})
	results = append(results, outcome{"In-DRAM (knows true geometry)", inDRAMFlips,
		"internal p±1 (true victims)"})

	t := report.NewTable(
		fmt.Sprintf("Double-sided hammer at device TRH=%d, same mitigation budget for both defenses", trh),
		"Defense", "Refreshes", "Bit Flips")
	for _, r := range results {
		t.AddRow(r.name, r.refreshd, r.flips)
	}
	fmt.Fprint(out, t)
	fmt.Fprintln(out, "\nSame tracker quality, same refresh budget — the only difference is WHO knows")
	fmt.Fprintln(out, "the row adjacency. This is why PrIDE is an in-DRAM design, and why DDR5 added")
	fmt.Fprintln(out, "DRFM (let the MC name an aggressor, let the DEVICE find its victims).")
}
