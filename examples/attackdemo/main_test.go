package main

import (
	"strings"
	"testing"
)

func TestAttackDemoSmoke(t *testing.T) {
	acts := 40_000 // a tenth of the demo budget keeps the smoke test quick
	var out strings.Builder
	run(&out, acts)
	for _, want := range []string{"Worst disturbance", "trrespass", "blacksmith", "PrIDE"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
