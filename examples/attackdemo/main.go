// Attack demo: replay the published attack families (TRRespass, Blacksmith,
// Half-Double, counter-starver) against a vendor-style TRR tracker, DSAC,
// PRoHIT and PrIDE, and compare the worst disturbance each tracker allows —
// a command-line rendition of the paper's Section VII-F story.
//
// Run with:
//
//	go run ./examples/attackdemo
package main

import (
	"fmt"
	"io"
	"os"

	"pride/internal/baseline"
	"pride/internal/dram"
	"pride/internal/patterns"
	"pride/internal/report"
	"pride/internal/rng"
	"pride/internal/sim"
	"pride/internal/tracker"
)

func main() {
	run(os.Stdout, 400_000)
}

// run replays the attack line-up with the given trial length; tests use a
// shorter budget than the 400k-ACT demo default.
func run(out io.Writer, acts int) {
	params := dram.DDR5()
	params.RowsPerBank = 8192
	params.RowBits = 13

	// The attack line-up: one representative of each published family.
	attacks := []*patterns.Pattern{
		patterns.SingleSided(4000),
		patterns.DoubleSided(4000),
		patterns.TRRespass(3000, 40, 3), // more aggressors than any tracker has entries
		patterns.Blacksmith(patterns.BlacksmithConfig{
			Base: 2000, Pairs: 8, Period: 32,
			Frequencies: []int{2, 2, 4, 4, 8, 8, 16, 16},
			Phases:      []int{0, 1, 0, 2, 0, 4, 0, 8},
			Amplitudes:  []int{4, 4, 2, 2, 1, 1, 1, 1},
			DecoyRows:   []int{6000, 6010, 6020, 6030},
		}),
		patterns.HalfDouble(5000, 16),
		patterns.CounterStarver(1000, 30, 10, 40, 1),
	}

	// The defenders: a DDR4-style TRR, the published low-cost trackers,
	// and PrIDE.
	schemes := []sim.Scheme{
		{
			Name:                "TRR",
			MitigationEveryNREF: 1,
			New: func(p dram.Params, r *rng.Stream) tracker.Tracker {
				return baseline.NewTRR(baseline.DefaultTRREntries, p.RowBits)
			},
		},
	}
	for _, s := range sim.Fig15Schemes() {
		if s.Name == "DSAC" || s.Name == "PRoHIT" || s.Name == "PrIDE" {
			schemes = append(schemes, s)
		}
	}

	cfg := sim.AttackConfig{Params: params, ACTs: acts}
	t := report.NewTable(
		fmt.Sprintf("Worst disturbance per tracker per attack family (%d ACTs per trial)", cfg.ACTs),
		"Attack", "TRR", "PRoHIT", "DSAC", "PrIDE")
	for _, pat := range attacks {
		cells := []interface{}{pat.Name}
		for _, name := range []string{"TRR", "PRoHIT", "DSAC", "PrIDE"} {
			for _, s := range schemes {
				if s.Name == name {
					res := sim.RunAttack(cfg, s, pat, 7)
					cells = append(cells, res.MaxDisturbance)
				}
			}
		}
		t.AddRow(cells...)
	}
	fmt.Fprintln(out, t)
	fmt.Fprintln(out, "Reading the table: counter-driven trackers (TRR, PRoHIT) leak thousands of")
	fmt.Fprintln(out, "unmitigated activations under crafted patterns — and the number grows with")
	fmt.Fprintln(out, "attack duration. PrIDE's worst case stays bounded near its analytic TRH*,")
	fmt.Fprintln(out, "no matter which pattern is thrown at it (Fig 1c's promise).")
}
