module pride

go 1.22
